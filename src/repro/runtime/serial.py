"""In-process reference backend: the semantics every other backend matches."""

from __future__ import annotations

from collections import deque
from typing import Sequence

from .backend import ExecutionBackend, TaskFn, WorkerError

__all__ = ["SerialBackend"]


class SerialBackend(ExecutionBackend):
    """Runs every task in the calling process, one worker-state per slot.

    ``n_workers`` only partitions state (e.g. env shards); execution is
    strictly sequential in dispatch order, which *is* the determinism
    contract the process pool reproduces.  Posted tasks execute eagerly
    at :meth:`post` time (there is no concurrency to defer to); their
    results — and errors — are queued and delivered by
    :meth:`next_result` in post order.
    """

    def __init__(self, n_workers: int = 1):
        super().__init__(n_workers)
        self._states: list[dict] = []
        self._posted: deque = deque()  # (worker, "ok"|"err", payload)

    def _start_impl(self) -> None:
        self._states = [{} for _ in range(self.n_workers)]
        self._posted.clear()

    def _close_impl(self) -> None:
        self._states = []
        self._posted.clear()

    def _run(self, worker_id: int, fn: TaskFn, args: tuple):
        try:
            return fn(self._states[worker_id], *args)
        except WorkerError:
            raise
        except Exception as exc:
            raise WorkerError(worker_id, exc) from exc

    def _scatter_impl(
        self,
        fn: TaskFn,
        per_worker_args: Sequence[tuple],
        workers: list[int],
        shared: tuple = (),
    ) -> list:
        return [
            self._run(w, fn, shared + tuple(args))
            for w, args in zip(workers, per_worker_args)
        ]

    def _post_impl(self, worker: int, fn: TaskFn, args: tuple) -> None:
        # No concurrency to defer to: run now, deliver via next_result().
        try:
            self._posted.append((worker, "ok", self._run(worker, fn, args)))
        except WorkerError as err:
            self._posted.append((worker, "err", err))

    def _next_result_impl(self) -> tuple:
        worker, status, payload = self._posted.popleft()
        if status == "err":
            raise payload
        return worker, payload

    def _n_pending_impl(self) -> int:
        return len(self._posted)

    def _map_impl(self, fn: TaskFn, tasks: list, chunksize: int) -> list:
        # Chunking is a no-op serially, but walking chunk-by-chunk keeps the
        # executed (worker, task) pairing identical in spirit to the pool.
        results = []
        for start in range(0, len(tasks), chunksize):
            worker = (start // chunksize) % self.n_workers
            for task in tasks[start : start + chunksize]:
                results.append(self._run(worker, fn, (task,)))
        return results
