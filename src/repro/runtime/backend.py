"""The execution-backend contract shared by serial and process-pool runs.

A backend owns ``n_workers`` logical workers.  Each worker has a private
``state`` dict that persists across calls; every task is a plain top-level
function ``fn(state, *args)`` executed against one worker's state.  Three
dispatch primitives cover every fan-out pattern in the repo:

``broadcast(fn, *args)``
    run ``fn`` once on *every* worker (install schedulers, build env
    shards, push policy weights);
``scatter(fn, per_worker_args, workers=...)``
    run ``fn`` once on each listed worker with that worker's own
    arguments (step the env shards);
``map(fn, tasks, chunksize=...)``
    run ``fn(state, task)`` over an arbitrary task list, load-balanced in
    chunks across workers, results returned **in task order** (evaluate a
    scheduler over the paper's test sequences).

A fourth, *asynchronous* primitive pair serves the episode-granular actor
runtime (:mod:`repro.runtime.actor`):

``post(worker, fn, *args)``
    queue ``fn(state, *args)`` on one worker and return immediately;
``next_result()``
    block until *some* posted task finishes and return
    ``(worker_id, result)``.

Posted tasks execute in per-worker FIFO order (the staleness mechanism:
a weight push posted before an episode is guaranteed to apply first), but
``next_result`` returns completions in whatever order they arrive across
workers.  ``post``/``next_result`` must be fully drained before the
synchronous primitives run again — ``scatter``/``map`` refuse while
results are pending so the two dispatch styles can never interleave on
one pipe.

Determinism contract: for the same task list, ``map``/``scatter`` return
the same ordered results on every backend and any worker count.  Dispatch
order may differ; observable results may not.  All the runtime golden
tests pin exactly this.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Sequence

__all__ = ["ExecutionBackend", "WorkerError", "make_backend"]

#: worker-task signature: fn(state, *args) -> result
TaskFn = Callable[..., Any]


class WorkerError(RuntimeError):
    """A task raised inside a worker; carries the worker id and cause."""

    def __init__(self, worker_id: int, cause: BaseException):
        super().__init__(f"task failed on worker {worker_id}: {cause!r}")
        self.worker_id = worker_id
        self.cause = cause


class ExecutionBackend(abc.ABC):
    """Lifecycle + dispatch over a fixed set of stateful workers."""

    #: True when tasks/results cross a process boundary (are pickled);
    #: callers may use wire-compact encodings only when this is set.
    crosses_process_boundary = False

    def __init__(self, n_workers: int = 1):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self._n_workers = int(n_workers)
        self._started = False
        self._closed = False

    # -- lifecycle ------------------------------------------------------
    @property
    def n_workers(self) -> int:
        return self._n_workers

    @property
    def started(self) -> bool:
        return self._started and not self._closed

    def start(self) -> "ExecutionBackend":
        """Bring the workers up (idempotent); returns self for chaining."""
        if self._closed:
            raise RuntimeError("backend has been closed; create a new one")
        if not self._started:
            self._start_impl()
            self._started = True
        return self

    def close(self) -> None:
        """Tear the workers down (idempotent)."""
        if self._started and not self._closed:
            self._close_impl()
        self._closed = True

    def __enter__(self) -> "ExecutionBackend":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best-effort cleanup; close() explicitly in code
        try:
            self.close()
        except Exception:
            pass

    # -- dispatch -------------------------------------------------------
    def broadcast(self, fn: TaskFn, *args) -> list:
        """Run ``fn(state, *args)`` on every worker; results by worker id.

        The arguments ride the scatter ``shared`` channel, so process
        backends serialize them once per call, not once per worker.
        """
        return self.scatter(fn, [()] * self.n_workers, shared=args)

    def scatter(
        self,
        fn: TaskFn,
        per_worker_args: Sequence[tuple],
        workers: Sequence[int] | None = None,
        shared: tuple = (),
    ) -> list:
        """Run ``fn(state, *shared, *per_worker_args[i])`` on each listed
        worker.

        ``workers`` defaults to ``range(len(per_worker_args))``.  Results
        come back ordered like ``workers``.  ``shared`` arguments are
        identical for every worker and are serialized **once** per call
        on process backends (and spilled to shared memory once under
        ``transport="shm"``) — put the big common payloads (weight
        snapshots) there and the per-worker variation (shards) in
        ``per_worker_args``.
        """
        if workers is None:
            workers = range(len(per_worker_args))
        workers = list(workers)
        if len(workers) != len(per_worker_args):
            raise ValueError(
                f"{len(workers)} workers for {len(per_worker_args)} argument tuples"
            )
        for w in workers:
            if not 0 <= w < self.n_workers:
                raise ValueError(f"worker id {w} out of range [0, {self.n_workers})")
        if len(set(workers)) != len(workers):
            raise ValueError("worker ids must be unique per scatter call")
        self.start()
        self._require_drained("scatter")
        return self._scatter_impl(fn, per_worker_args, workers, tuple(shared))

    def map(
        self,
        fn: TaskFn,
        tasks: Sequence,
        chunksize: int | None = None,
    ) -> list:
        """Run ``fn(state, task)`` for every task; results in task order.

        Tasks are dispatched in chunks of ``chunksize`` (default: enough
        chunks for ~4 rounds of load balancing per worker) so per-dispatch
        overhead amortises over many small tasks while stragglers still
        rebalance.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if chunksize is None:
            chunksize = max(1, -(-len(tasks) // (self.n_workers * 4)))
        if chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.start()
        self._require_drained("map")
        return self._map_impl(fn, tasks, chunksize)

    # -- asynchronous dispatch ------------------------------------------
    def post(self, worker: int, fn: TaskFn, *args) -> None:
        """Queue ``fn(state, *args)`` on one worker without waiting.

        Per-worker execution order is the post order (FIFO); collect
        completions — in cross-worker arrival order — with
        :meth:`next_result`.
        """
        if not 0 <= worker < self.n_workers:
            raise ValueError(
                f"worker id {worker} out of range [0, {self.n_workers})"
            )
        self.start()
        self._post_impl(worker, fn, args)

    def post_all(self, fn: TaskFn, *args) -> None:
        """Post ``fn(state, *args)`` on *every* worker without waiting.

        Semantically ``post(w, fn, *args)`` for each worker in id order
        (same FIFO guarantees, one result per worker via
        :meth:`next_result`), but process backends encode the message
        **once** and write the same bytes to every pipe — the weight
        re-broadcast after a PPO update ships one snapshot, not
        ``n_workers`` pickled copies.
        """
        self.start()
        self._post_all_impl(fn, args)

    def next_result(self) -> tuple[int, Any]:
        """Block for the next completed posted task: ``(worker, result)``.

        Raises :class:`WorkerError` if that task failed (the failed task
        still counts as drained).  Raises ``RuntimeError`` when nothing is
        pending — a blocking wait could never return.
        """
        if self.n_pending == 0:
            raise RuntimeError("next_result() with no posted tasks pending")
        return self._next_result_impl()

    @property
    def n_pending(self) -> int:
        """Posted tasks whose results have not been collected yet."""
        if not self.started:
            return 0
        return self._n_pending_impl()

    def _require_drained(self, what: str) -> None:
        if self.n_pending:
            raise RuntimeError(
                f"cannot {what} while {self.n_pending} posted task(s) are "
                "pending; drain them with next_result() first"
            )

    # -- backend hooks --------------------------------------------------
    @abc.abstractmethod
    def _start_impl(self) -> None: ...

    @abc.abstractmethod
    def _close_impl(self) -> None: ...

    @abc.abstractmethod
    def _scatter_impl(
        self,
        fn: TaskFn,
        per_worker_args: Sequence[tuple],
        workers: list[int],
        shared: tuple,
    ) -> list: ...

    @abc.abstractmethod
    def _map_impl(self, fn: TaskFn, tasks: list, chunksize: int) -> list: ...

    # Async-dispatch hooks have defaults so minimal backends (tests,
    # third-party) that only implement the synchronous contract keep
    # working until they opt in.
    def _post_impl(self, worker: int, fn: TaskFn, args: tuple) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} does not implement post()"
        )

    def _post_all_impl(self, fn: TaskFn, args: tuple) -> None:
        for worker in range(self.n_workers):
            self._post_impl(worker, fn, args)

    def _next_result_impl(self) -> tuple[int, Any]:
        raise NotImplementedError(
            f"{type(self).__name__} does not implement next_result()"
        )

    def _n_pending_impl(self) -> int:
        return 0


def make_backend(config=None, workers: int | None = None) -> ExecutionBackend:
    """Build a backend from a :class:`repro.config.RuntimeConfig`.

    ``workers`` overrides the configured count (the CLI ``--workers``
    flag).  ``backend="serial"`` — or one worker on the ``"process"``
    backend resolving to a single shard — still honours the configured
    choice: a 1-worker process pool is a real child process, which the
    equivalence tests use to pin serialisation behaviour.
    """
    from repro.config import RuntimeConfig

    from .process_pool import ProcessPoolBackend
    from .serial import SerialBackend

    config = config or RuntimeConfig()
    n = config.workers if workers is None else workers
    if n < 1:
        raise ValueError(f"workers must be >= 1, got {n}")
    if config.backend == "serial":
        return SerialBackend(n)
    return ProcessPoolBackend(n, transport=config.transport)
