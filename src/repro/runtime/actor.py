"""Episode-granular actor runtime: in-worker rollouts, trajectory streaming.

The lock-step :class:`ShardedVecSchedGym` pays two pipe transfers per env
*step* (actions out, observations back) and keeps the policy forward in
the parent, so on the process backend IPC dominates.  This module moves
the whole rollout into the worker: each actor holds its own local vec of
:class:`~repro.sim.env.SchedGym` environments **and a replica of the
policy/value networks**, lock-steps its assigned episodes locally (env
stepping, observation building, *batched* action sampling, per-episode
value/log-prob targets), and ships finished :class:`EpisodeSlice` objects
back — IPC drops from two transfers per env-step to at most one per
episode (one per submitted chunk), and the parent's policy forward
leaves the critical path entirely.

Determinism contract (pinned by the async golden tests): an episode's
content depends only on ``(seed, act_stream, epoch, traj)`` and the
weight version it ran against.  Actors reuse the trainer's rollout
invariants — per-trajectory RNG streams, episodes entering in trajectory
order within a chunk, and one canonical ``(T, M, F)`` per-episode batch
for value estimates and behaviour log-probs — so a worker-collected
episode is bit-identical to a parent-collected one regardless of how the
local envs interleave.  Weight pushes and episode submissions share each
worker's FIFO queue, which is the staleness mechanism: a chunk runs
against exactly the last version pushed before it was submitted, on
every backend and any worker count.

Staleness accounting: :meth:`ActorRuntime.drain` stamps each episode
with ``staleness = current_version - episode.version`` (in learner
updates).  The learner decides what to do with stale episodes (drop or
importance-reweight — PPO ratios already use the stored behaviour
log-probs, so reweighting is automatic); the runtime only measures.
"""

from __future__ import annotations

import time as _time
from collections import deque
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.config import EnvConfig, RuntimeConfig
from repro.telemetry import core as _telemetry

from .backend import ExecutionBackend, WorkerError, make_backend
from .seeding import stream_rng

__all__ = ["ActorRuntime", "EpisodeSlice"]


@dataclass
class EpisodeSlice:
    """One finished episode, ready to drop into a :class:`TrajectoryBuffer`.

    ``log_probs`` are the *canonical* per-episode behaviour log-probs
    (:meth:`PPOAgent.episode_log_probs`) and ``values`` the deferred
    per-episode value estimates — exactly what ``Trainer`` would have
    computed parent-side.  ``reward`` is the raw terminal reward; the
    learner applies its own reward scale.  ``staleness`` is stamped by
    :meth:`ActorRuntime.drain` (learner updates since collection).

    In transit ``obs`` may be mask-compacted to its valid rows
    (:func:`_pack_obs`) and ``masks`` prefix-compressed to per-step
    valid counts (:func:`_pack_masks`); :meth:`ActorRuntime.drain`
    always yields the full ``(T, M, F)`` / ``(T, M)`` batches.
    """

    epoch: int
    traj: int
    version: int
    obs: np.ndarray         # (T, M, F) float32
    masks: np.ndarray       # (T, M)    bool
    actions: np.ndarray     # (T,)      int64
    log_probs: np.ndarray   # (T,)      float64
    values: np.ndarray      # (T,)      float64
    reward: float
    steps: int
    staleness: int = -1


# ----------------------------------------------------------------------
# worker-side task functions (top-level: picklable by reference)
# ----------------------------------------------------------------------
def _actor_init(state, cluster, reward_spec, config, n_envs, policy, value,
                seed, act_stream, version):
    # Imports stay local: repro.rl/.sim import repro.runtime, so importing
    # them at module scope would cycle through the package __init__.
    from repro.rl.ppo import PPOAgent
    from repro.sim.vec_env import VecSchedGym

    from .sharded_env import _resolve_reward

    state["vec"] = VecSchedGym(
        n_envs, cluster, _resolve_reward(reward_spec), config=config
    )
    state["agent"] = PPOAgent(policy, value)
    state["seed"] = seed
    state["act_stream"] = act_stream
    state["version"] = version


def _actor_load_weights(state, version, snapshot):
    state["agent"].load_weights(snapshot)
    state["version"] = version


def _actor_episodes(state, epoch, assignments):
    """Run a chunk of complete episodes through the local vec env.

    ``assignments`` is ``[(traj, jobs), ...]``; the chunk lock-steps
    through ``state["vec"]`` with the same invariants as the trainer's
    vectorised collector — each trajectory samples from its own
    ``(seed, act_stream, epoch, traj)`` stream and finishes with one
    canonical per-episode target batch — so episode content does not
    depend on local env count or interleaving.  Returns one
    :class:`EpisodeSlice` per assignment, in trajectory order.
    """
    agent, vec = state["agent"], state["vec"]
    reg = _telemetry.current()
    timed = reg.enabled
    perf = _time.perf_counter
    trajs = [traj for traj, _ in assignments]
    with reg.span("rollout.decode_jobs"):
        sequences = [
            _decode_jobs(jobs) if isinstance(jobs, np.ndarray) else jobs
            for _, jobs in assignments
        ]
    rngs = {
        traj: stream_rng(state["seed"], state["act_stream"], epoch, traj)
        for traj in trajs
    }
    n = min(vec.n_envs, len(sequences))
    obs, masks = vec.reset(sequences[:n])
    vec.queue_sequences(sequences[n:])
    m, f = obs.shape[1:]
    traj_of_env = {i: trajs[i] for i in range(n)}
    next_idx = n
    # Per-trajectory episode buffers, written in place per step: one
    # decision per job is the common episode length, so sizing by the
    # sequence length avoids a stack-copy pass over every episode.
    bufs: dict[int, tuple[np.ndarray, np.ndarray, list]] = {
        traj: (
            np.empty((len(seq), m, f), dtype=np.float32),
            np.empty((len(seq), m), dtype=bool),
            [],
        )
        for traj, seq in zip(trajs, sequences)
    }
    rewards: dict[int, float] = {}
    # Same phase accounting (and span names) as the trainer's lock-step
    # collector, recorded into this worker's registry — the parent sees
    # them worker-labelled via the result-message piggyback.
    t_policy = t_env = t_buffer = 0.0
    n_waves = 0
    n_env_steps = 0
    while True:
        active_idx = np.flatnonzero(vec.active)
        if not len(active_idx):
            break
        a_obs = obs[active_idx]
        a_masks = masks[active_idx]
        acting = [traj_of_env[i] for i in active_idx]
        if timed:
            t0 = perf()
        actions, _ = agent.act_batch(a_obs, a_masks, [rngs[t] for t in acting])
        if timed:
            t1 = perf()
            t_policy += t1 - t0
        for j, traj in enumerate(acting):
            ep_obs, ep_masks, ep_actions = bufs[traj]
            t = len(ep_actions)
            if t == len(ep_obs):  # episode outran its sequence-length hint
                ep_obs = np.concatenate([ep_obs, np.empty_like(ep_obs)])
                ep_masks = np.concatenate([ep_masks, np.empty_like(ep_masks)])
                bufs[traj] = (ep_obs, ep_masks, ep_actions)
            ep_obs[t] = a_obs[j]
            ep_masks[t] = a_masks[j]
            ep_actions.append(int(actions[j]))
        full = np.full(vec.n_envs, -1, dtype=np.int64)
        full[active_idx] = actions
        if timed:
            t0 = perf()
            t_buffer += t0 - t1
        result = vec.step(full)
        if timed:
            t_env += perf() - t0
            n_waves += 1
            n_env_steps += len(active_idx)
        for i in active_idx:
            if result.dones[i]:
                rewards[traj_of_env[i]] = float(result.rewards[i])
                if result.infos[i].get("auto_reset"):
                    traj_of_env[i] = trajs[next_idx]
                    next_idx += 1
        obs, masks = result.observations, result.action_masks
    if timed and n_waves:
        reg.add_span_time("rollout.policy_forward", t_policy, n_waves)
        reg.add_span_time("rollout.env_step", t_env, n_waves)
        reg.add_span_time("rollout.buffer", t_buffer, n_waves)
        reg.counter("rollout.env_steps").add(n_env_steps)

    slices = []
    pack_ok = False
    for k, traj in enumerate(trajs):
        t = len(bufs[traj][2])
        ep_obs = bufs[traj][0][:t]
        ep_masks = bufs[traj][1][:t]
        ep_actions = np.array(bufs[traj][2], dtype=np.int64)
        if k == 0:
            # The zero-padding invariant behind _pack_obs is structural
            # (the observation builder zeroes padded rows), so one guarded
            # pack per chunk decides for all of its episodes.
            wire_obs = _pack_obs(ep_obs, ep_masks)
            pack_ok = wire_obs.ndim == 2
        else:
            wire_obs = ep_obs[ep_masks] if pack_ok else ep_obs
        slices.append(EpisodeSlice(
            epoch=epoch,
            traj=traj,
            version=state["version"],
            obs=wire_obs,
            masks=_pack_masks(ep_masks),
            actions=ep_actions,
            log_probs=agent.episode_log_probs(ep_obs, ep_masks, ep_actions),
            values=agent.value_batch(ep_obs),
            reward=rewards[traj],
            steps=len(ep_actions),
        ))
    return slices


#: SWF fields shipped per job, in wire-column order (start_time is reset
#: on decode — submitted sequences are unscheduled by contract).
_JOB_WIRE_FIELDS = (
    "job_id", "submit_time", "run_time", "requested_procs",
    "requested_time", "requested_mem", "user_id", "group_id",
    "executable_id", "queue_id", "partition_id", "status", "wait_time",
    "used_procs", "used_avg_cpu", "used_mem", "preceding_job_id",
    "think_time",
)


def _encode_jobs(jobs) -> np.ndarray:
    """Columnar wire format for a job sequence: one ``(n, 18)`` float64
    array instead of ``n`` pickled :class:`Job` objects.  Every SWF field
    is integral or already float64, so the round trip through
    :func:`_decode_jobs` is exact; it is also ~2x cheaper than object
    pickling on both ends, which matters because sequences are shipped
    every epoch."""
    return np.array(
        [
            (j.job_id, j.submit_time, j.run_time, j.requested_procs,
             j.requested_time, j.requested_mem, j.user_id, j.group_id,
             j.executable_id, j.queue_id, j.partition_id, j.status,
             j.wait_time, j.used_procs, j.used_avg_cpu, j.used_mem,
             j.preceding_job_id, j.think_time)
            for j in jobs
        ],
        dtype=np.float64,
    )


def _decode_jobs(arr: np.ndarray) -> list:
    """Inverse of :func:`_encode_jobs`.

    Rebuilds via ``object.__new__`` + direct slot assignment:
    ``__post_init__`` validation already ran when the trace was loaded
    (including the ``requested_time`` fallback, so the stored value is
    final), and re-running it per job per epoch is measurable overhead.
    """
    from repro.workloads.job import Job

    jobs = []
    for (job_id, submit_time, run_time, requested_procs, requested_time,
         requested_mem, user_id, group_id, executable_id, queue_id,
         partition_id, status, wait_time, used_procs, used_avg_cpu,
         used_mem, preceding_job_id, think_time) in arr.tolist():
        j = object.__new__(Job)
        j.job_id = int(job_id)
        j.submit_time = submit_time
        j.run_time = run_time
        j.requested_procs = int(requested_procs)
        j.requested_time = requested_time
        j.requested_mem = requested_mem
        j.user_id = int(user_id)
        j.group_id = int(group_id)
        j.executable_id = int(executable_id)
        j.queue_id = int(queue_id)
        j.partition_id = int(partition_id)
        j.status = int(status)
        j.wait_time = wait_time
        j.used_procs = int(used_procs)
        j.used_avg_cpu = used_avg_cpu
        j.used_mem = used_mem
        j.preceding_job_id = int(preceding_job_id)
        j.think_time = think_time
        j.start_time = -1.0
        jobs.append(j)
    return jobs


def _pack_obs(obs: np.ndarray, masks: np.ndarray) -> np.ndarray:
    """Mask-compact an episode's observations for the wire.

    Padded observation rows are all-zero (only ``masks``-valid rows carry
    features), so shipping the valid rows alone cuts the per-episode
    payload by the padding fraction — substantial at large ``M`` — and
    :func:`_unpack_obs` rebuilds the full ``(T, M, F)`` batch *exactly*.
    If the zero-padding invariant ever breaks, fall back to the full
    array rather than ship a lossy compaction.
    """
    packed = obs[masks]
    if np.count_nonzero(obs) != np.count_nonzero(packed):
        return obs
    return packed


def _unpack_obs(obs: np.ndarray, masks: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_pack_obs` (2-D wire format -> full 3-D batch)."""
    if obs.ndim != 2:
        return obs
    full = np.zeros(masks.shape + (obs.shape[-1],), dtype=obs.dtype)
    full[masks] = obs
    return full


def _pack_masks(masks: np.ndarray) -> np.ndarray:
    """Mask wire format: visible jobs pack the leading observation slots,
    so a step's mask is (in practice) a prefix of True — one valid-count
    per step rebuilds it exactly.  Fall back to the full ``(T, M)`` array
    whenever a mask isn't prefix-form."""
    counts = masks.sum(axis=1, dtype=np.int32)
    if np.array_equal(np.arange(masks.shape[1]) < counts[:, None], masks):
        return counts
    return masks


def _unpack_masks(masks: np.ndarray, m: int) -> np.ndarray:
    """Inverse of :func:`_pack_masks` (1-D counts -> full bool masks)."""
    if masks.ndim != 1:
        return masks
    return np.arange(m) < masks[:, None]


# ----------------------------------------------------------------------
class ActorRuntime:
    """A pool of episode-granular actors behind ``post``/``next_result``.

    Lifecycle: :meth:`install` replicates the envs + networks into every
    worker, :meth:`submit` queues a set of episodes (round-robin by
    trajectory index, one chunk per worker), :meth:`drain` blocks for the
    next finished episode, :meth:`push_weights` streams a new snapshot to
    every actor.  Weight pushes ride the same per-worker FIFO as episode
    chunks, so ordering — not locking — defines which version each
    episode sees.

    ``n_envs`` is the *per-worker* lock-step width: each actor batches
    policy forwards across up to that many of its local episodes, so the
    async path keeps the vectorised-forward advantage the lock-step
    collector gets in the parent.
    """

    def __init__(
        self,
        cluster,
        reward,
        config: EnvConfig | None = None,
        runtime: RuntimeConfig | None = None,
        backend: ExecutionBackend | None = None,
        n_envs: int = 8,
        seed: int = 0,
        act_stream: int = 7919,
    ):
        if n_envs < 1:
            raise ValueError(f"n_envs must be >= 1, got {n_envs}")
        self.config = config or EnvConfig()
        self._owns_backend = backend is None
        self.backend = backend or make_backend(runtime or RuntimeConfig())
        self.backend.start()
        self._cluster = cluster
        self._reward = reward
        self._n_envs = int(n_envs)
        self._seed = int(seed)
        self._act_stream = int(act_stream)
        self._version = -1
        self._installed = False
        # Per-worker FIFO of what each posted task is: ("weights", 0)
        # pushes complete with a None ack that drain() must skip;
        # ("episodes", k) completions carry k EpisodeSlices.
        self._kinds: list[deque] = [deque() for _ in range(self.backend.n_workers)]
        self._ready: deque = deque()
        self._n_episodes_pending = 0

    # -- lifecycle ------------------------------------------------------
    @property
    def n_workers(self) -> int:
        return self.backend.n_workers

    @property
    def n_envs(self) -> int:
        """Per-worker lock-step width."""
        return self._n_envs

    @property
    def version(self) -> int:
        """The latest weight version pushed to the actors."""
        return self._version

    @property
    def n_outstanding(self) -> int:
        """Episodes submitted but not yet drained."""
        return self._n_episodes_pending + len(self._ready)

    def install(self, policy, value, version: int = 0) -> None:
        """Replicate envs + networks into every worker (once per run)."""
        if self._installed:
            raise RuntimeError("actors already installed")
        self.backend.broadcast(
            _actor_init,
            self._cluster,
            self._reward,
            self.config,
            self._n_envs,
            policy,
            value,
            self._seed,
            self._act_stream,
            int(version),
        )
        self._version = int(version)
        self._installed = True

    def close(self) -> None:
        """Drain stragglers and release the backend if this runtime owns it."""
        while self.backend.started and self.backend.n_pending:
            try:
                self.backend.next_result()
            except WorkerError:
                break  # a dead/failing worker: leave cleanup to close()
        for kinds in self._kinds:
            kinds.clear()
        self._ready.clear()
        self._n_episodes_pending = 0
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "ActorRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- episode streaming ----------------------------------------------
    def push_weights(self, version: int, snapshot: dict) -> None:
        """Queue a weight snapshot on every actor (FIFO after prior work)."""
        self._require_installed()
        version = int(version)
        if version < self._version:
            raise ValueError(
                f"weight version must not decrease: {version} < {self._version}"
            )
        # post_all encodes the snapshot once for all workers (one pool
        # span under transport="shm") instead of n_workers pipe copies
        self.backend.post_all(_actor_load_weights, version, snapshot)
        for w in range(self.n_workers):
            self._kinds[w].append(("weights", 0))
        self._version = version

    def submit(self, epoch: int, assignments: Sequence[tuple[int, Sequence]]) -> None:
        """Queue episodes ``[(traj, jobs), ...]``, one chunk per worker.

        Episodes fan round-robin by trajectory index (``traj %
        n_workers``), so the worker owning a trajectory — hence its
        weight version under FIFO ordering — is deterministic for any
        submission pattern.  On process backends job sequences travel in
        the columnar :func:`_encode_jobs` wire format (exact round trip,
        ~2x cheaper than object pickling).
        """
        self._require_installed()
        wire = self.backend.crosses_process_boundary
        chunks: dict[int, list] = {}
        with _telemetry.current().span("runtime.ipc.encode_jobs"):
            for traj, jobs in assignments:
                chunks.setdefault(int(traj) % self.n_workers, []).append(
                    (int(traj), _encode_jobs(jobs) if wire else jobs)
                )
        for w in sorted(chunks):
            self.backend.post(w, _actor_episodes, int(epoch), chunks[w])
            self._kinds[w].append(("episodes", len(chunks[w])))
            self._n_episodes_pending += len(chunks[w])

    def drain(self) -> EpisodeSlice:
        """Block for the next finished episode (cross-worker arrival order),
        stamped with its staleness in learner updates."""
        while not self._ready:
            if self._n_episodes_pending == 0:
                raise RuntimeError("drain() with no episodes in flight")
            try:
                worker, payload = self.backend.next_result()
            except WorkerError as err:
                kinds = self._kinds[err.worker_id]
                kind, count = kinds.popleft() if kinds else ("episodes", 0)
                if kind == "episodes":
                    self._n_episodes_pending -= min(
                        count, self._n_episodes_pending
                    )
                raise
            kind, count = self._kinds[worker].popleft()
            if kind == "weights":
                continue  # load-weights ack, nothing to deliver
            self._n_episodes_pending -= count
            self._ready.extend((worker, ep) for ep in payload)
        worker, episode = self._ready.popleft()
        episode.masks = _unpack_masks(
            episode.masks, self.config.observation_shape[0]
        )
        episode.obs = _unpack_obs(episode.obs, episode.masks)
        episode.staleness = self._version - episode.version
        reg = _telemetry.current()
        if reg.enabled:
            # Worker-labelled by hand (same name shape that absorb()
            # produces) so per-actor staleness distributions land in the
            # merged snapshot next to the piggybacked worker metrics.
            reg.histogram(
                f"runtime.actor.staleness{{worker={worker}}}",
                bounds=_telemetry.INT_BOUNDS,
            ).record(episode.staleness)
        return episode

    def _require_installed(self) -> None:
        if not self._installed:
            raise RuntimeError("call install(policy, value) first")
