"""High-level convenience API — the paper's evaluation protocol in four calls.

* :func:`train` — learn a policy on a trace for a metric (§V-A protocol);
* :func:`evaluate` — score one scheduler on a trace: the metric over
  ``n_sequences`` random windows of ``sequence_length`` jobs (§V-C2:
  10 × 1024 by default), with or without backfilling;
* :func:`compare` — evaluate many schedulers on the *same* windows (the
  paper: "across different scheduling algorithms, we used the same 10
  random job sequences to make fair comparisons") — one Table V/VI/X/XI
  cell per scheduler;
* :func:`scenario_matrix` — the full scenario × scheduler evaluation
  matrix over the registered scenarios of :mod:`repro.scenarios`;
* :func:`train_matrix` / :func:`generalization_matrix` — the
  cross-scenario generalization study (Table VII): train one policy per
  scenario into a checkpoint zoo, then evaluate every trained policy on
  every scenario alongside the heuristics (see :mod:`repro.study`).

Results are :class:`EvalResult` — a ``float`` equal to the mean (so all
existing numeric code keeps working) that also carries the per-sequence
values, ``std`` and ``n``, the spread the paper's tables summarise.

Scenarios
---------
Wherever these calls take a trace they also take a *scenario*: a
registered name (``evaluate(SJF(), "lublin-256-mem")``) or a
:class:`repro.scenarios.Scenario` object.  The scenario supplies the
workload, the (possibly memory-constrained) cluster, and protocol
defaults — metric, backfill and sequence sizes — any of which explicit
arguments override.  ``EvalConfig.scenario`` selects one from config
alone (``evaluate(SJF(), config=EvalConfig(scenario=ScenarioConfig(
name="hpc2n")))``).

Execution runtime
-----------------
Sequences are independent simulations, so all calls fan them out through
:mod:`repro.runtime`: ``EvalConfig.runtime`` selects the backend
(``RuntimeConfig(backend="process", workers=N)`` for a process pool).
Sequences are pre-sampled in the parent and dispatched by index, and
per-sequence values are reassembled in sampling order — scores are
bit-identical for any backend and worker count.  Schedulers and sequences
are broadcast to workers once per call (for RL policies this is the
policy-weight broadcast), so each task ships a few integers; the
scenario matrix broadcasts every scenario's sequences once and ships
``(scenario, scheduler, sequence)`` index triples.
"""

from __future__ import annotations

import time
from typing import Mapping, Sequence

import numpy as np

from .config import EvalConfig
from .rl.trainer import train as _train
from .telemetry import core as _telemetry
from .telemetry.sink import telemetry_run
from .runtime import make_backend
from .scenarios import Scenario, get_scenario, resolve_scenario_config
from .schedulers.base import Scheduler
from .sim.cluster import ClusterSpec
from .sim.metrics import metric_by_name
from .sim.simulator import run_scheduler
from .workloads.sampler import SequenceSampler
from .workloads.swf import SWFTrace

__all__ = [
    "train",
    "evaluate",
    "compare",
    "scenario_matrix",
    "train_matrix",
    "generalization_matrix",
    "EvalResult",
]

train = _train


class EvalResult(float):
    """Mean metric over the test sequences, plus the per-sequence spread.

    Behaves exactly like ``float(mean)`` in comparisons, arithmetic and
    formatting; ``values`` / ``std`` / ``n`` expose the distribution.
    """

    values: np.ndarray

    def __new__(cls, values) -> "EvalResult":
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("EvalResult needs a non-empty 1-D value array")
        self = super().__new__(cls, float(arr.mean()))
        self.values = arr
        return self

    @property
    def mean(self) -> float:
        return float(self)

    @property
    def std(self) -> float:
        """Population standard deviation across sequences."""
        return float(self.values.std())

    @property
    def n(self) -> int:
        return int(self.values.size)

    def __repr__(self) -> str:
        return f"EvalResult(mean={float(self):.6g}, std={self.std:.6g}, n={self.n})"

    def __reduce__(self):
        return (EvalResult, (self.values,))


# ----------------------------------------------------------------------
# worker-side task functions (top-level: picklable by reference)
# ----------------------------------------------------------------------
def _install_matrix_state(state, schedulers, cells):
    """One-shot broadcast of everything a worker needs: ``cells[ci]``
    holds one evaluation setting's pre-sampled sequences, cluster spec,
    backfill mode and metric name.  evaluate/compare are the one-cell
    special case of the scenario matrix, so this is the single worker
    protocol for all of them."""
    state["schedulers"] = schedulers
    state["cells"] = [
        {
            "sequences": sequences,
            "cluster": cluster,
            "backfill": backfill,
            "metric_fn": metric_by_name(metric)[0],
        }
        for sequences, cluster, backfill, metric in cells
    ]


def _matrix_task(state, task):
    """Score scheduler ``si`` on sequence ``qi`` of cell ``ci``.

    Records the full simulate+score latency into the
    ``eval.cell_latency_sec`` histogram; on a process backend the sample
    piggybacks back to the parent worker-labelled.
    """
    ci, si, qi = task
    cell = state["cells"][ci]
    reg = _telemetry.current()
    t0 = time.perf_counter() if reg.enabled else 0.0
    completed = run_scheduler(
        cell["sequences"][qi],
        cell["cluster"],
        state["schedulers"][si],
        backfill=cell["backfill"],
    )
    value = float(cell["metric_fn"](completed, cell["cluster"].n_procs))
    if reg.enabled:
        reg.histogram("eval.cell_latency_sec").record(time.perf_counter() - t0)
    return value


def _run_cells(
    schedulers, cells, runtime, cell_schedulers=None, heartbeat=None
) -> list[list[np.ndarray]]:
    """Fan every (cell, scheduler, sequence) task over ``runtime`` and
    reassemble ``values[ci][si]`` in dispatch order (bit-identical for
    any backend and worker count).

    ``cell_schedulers`` optionally restricts each cell to a subset of the
    global scheduler list: one list of scheduler indices per cell (the
    generalization study evaluates per-scenario retargeted policy
    instances, so its cells disagree on which schedulers apply).  The
    returned ``values[ci]`` is aligned with ``cell_schedulers[ci]``;
    ``None`` keeps the historical all-schedulers-everywhere behaviour.

    ``heartbeat(ci, seconds)``, when given, is called in the parent after
    each cell's tasks finish (study progress reporting).  Tasks are then
    dispatched cell-by-cell — still in the exact global task order, so
    results stay bit-identical with the single-map path.
    """
    if cell_schedulers is None:
        cell_schedulers = [list(range(len(schedulers)))] * len(cells)
    tasks = [
        (ci, si, qi)
        for ci in range(len(cells))
        for si in cell_schedulers[ci]
        for qi in range(len(cells[ci][0]))
    ]
    with make_backend(runtime) as backend:
        backend.broadcast(_install_matrix_state, list(schedulers), cells)
        if heartbeat is None:
            values = backend.map(
                _matrix_task, tasks, chunksize=runtime.chunksize
            )
        else:
            values = []
            for ci in range(len(cells)):
                cell_tasks = [t for t in tasks if t[0] == ci]
                t0 = time.perf_counter()
                values.extend(
                    backend.map(
                        _matrix_task, cell_tasks, chunksize=runtime.chunksize
                    )
                )
                heartbeat(ci, time.perf_counter() - t0)
    out: list[list[np.ndarray]] = []
    cursor = 0
    for (sequences, *_), sched_idx in zip(cells, cell_schedulers):
        row = []
        for _ in sched_idx:
            row.append(np.array(values[cursor : cursor + len(sequences)],
                                dtype=np.float64))
            cursor += len(sequences)
        out.append(row)
    return out


# ----------------------------------------------------------------------
TraceOrScenario = "SWFTrace | str | Scenario"


def _resolve_setting(
    trace,
    metric: str | None,
    backfill,
    config: EvalConfig | None,
) -> tuple[SWFTrace, ClusterSpec, str, "bool | str", EvalConfig]:
    """Normalise the (trace-or-scenario, metric, backfill, config) surface.

    Scenario protocol values fill whatever the caller left unset; a plain
    trace keeps the historical defaults (bsld, no backfill, EvalConfig()).
    An explicitly passed trace always wins: combined with a
    ``config.scenario`` it is evaluated on the scenario's cluster under
    the scenario's protocol (the :class:`repro.rl.trainer.Trainer`
    precedence), never silently replaced by the scenario's workload.
    """
    scenario = None
    if isinstance(trace, (str, Scenario)):
        scenario = get_scenario(trace)
        trace = None
    if scenario is None and config is not None and config.scenario is not None:
        if trace is None:
            scenario, trace = resolve_scenario_config(config.scenario)
        else:
            scenario = get_scenario(config.scenario.name)
    if scenario is not None:
        if trace is None:
            trace = scenario.build_trace()
        cluster = scenario.cluster
        metric = metric or scenario.protocol.metric
        backfill = scenario.protocol.backfill if backfill is None else backfill
        config = config or scenario.protocol.eval_config()
    else:
        if trace is None:
            raise ValueError(
                "pass a trace, a scenario name/object, or a config with "
                "a ScenarioConfig"
            )
        cluster = ClusterSpec(trace.max_procs)
        metric = metric or "bsld"
        backfill = False if backfill is None else backfill
        config = config or EvalConfig()
    return trace, cluster, metric, backfill, config


def _evaluate_matrix(
    schedulers: Sequence[Scheduler],
    trace: SWFTrace,
    metric: str,
    backfill: "bool | str",
    config: EvalConfig,
    cluster: ClusterSpec | None = None,
) -> np.ndarray:
    """Per-(scheduler, sequence) metric values, ``(S, Q)``, on the
    configured runtime — the one-cell case of :func:`_run_cells`.  Every
    scheduler sees the identical pre-sampled sequence list, and results
    are assembled in (scheduler, sequence) order regardless of backend or
    worker count."""
    metric_by_name(metric)  # fail fast in the parent on unknown metrics
    cluster = cluster or ClusterSpec(trace.max_procs)
    sampler = SequenceSampler(trace, config.sequence_length, seed=config.seed)
    sequences = sampler.sample_many(config.n_sequences)
    cells = [(sequences, cluster, backfill, metric)]
    values = _run_cells(schedulers, cells, config.runtime)
    return np.stack(values[0])


def evaluate(
    scheduler: Scheduler,
    trace: "SWFTrace | str | Scenario" = None,
    metric: str | None = None,
    backfill: "bool | str | None" = None,
    config: EvalConfig | None = None,
) -> EvalResult:
    """Metric of ``scheduler`` over seeded random test sequences.

    ``trace`` is an :class:`SWFTrace`, a registered scenario name, or a
    :class:`repro.scenarios.Scenario`; scenario protocol defaults apply
    to any of ``metric``/``backfill``/``config`` left unset.  Returns an
    :class:`EvalResult`: the mean as a float, with the per-sequence
    values and standard deviation attached.
    """
    trace, cluster, metric, backfill, config = _resolve_setting(
        trace, metric, backfill, config
    )
    with telemetry_run(
        config.telemetry, meta={"command": "evaluate", "metric": metric}
    ):
        matrix = _evaluate_matrix(
            [scheduler], trace, metric, backfill, config, cluster=cluster
        )
    return EvalResult(matrix[0])


def _named_schedulers(
    schedulers: Sequence[Scheduler] | Mapping[str, Scheduler],
) -> list[tuple[str, Scheduler]]:
    if isinstance(schedulers, Mapping):
        items = list(schedulers.items())
    else:
        items = [(s.name, s) for s in schedulers]
    if len({name for name, _ in items}) != len(items):
        raise ValueError("scheduler names must be unique")
    return items


def compare(
    schedulers: Sequence[Scheduler] | Mapping[str, Scheduler],
    trace: "SWFTrace | str | Scenario" = None,
    metric: str | None = None,
    backfill: "bool | str | None" = None,
    config: EvalConfig | None = None,
) -> dict[str, EvalResult]:
    """Evaluate several schedulers on identical sequences; returns
    ``{scheduler name: EvalResult}`` in input order.  Accepts scenarios
    exactly as :func:`evaluate` does."""
    trace, cluster, metric, backfill, config = _resolve_setting(
        trace, metric, backfill, config
    )
    items = _named_schedulers(schedulers)
    with telemetry_run(
        config.telemetry, meta={"command": "compare", "metric": metric}
    ):
        matrix = _evaluate_matrix(
            [s for _, s in items], trace, metric, backfill, config,
            cluster=cluster,
        )
    return {
        name: EvalResult(matrix[i]) for i, (name, _) in enumerate(items)
    }


def scenario_matrix(
    schedulers: Sequence[Scheduler] | Mapping[str, Scheduler],
    scenarios: Sequence["str | Scenario"],
    metric: str | None = None,
    backfill: "bool | str | None" = None,
    config: EvalConfig | None = None,
    n_jobs: int | None = None,
) -> dict[str, dict[str, EvalResult]]:
    """The scenario × scheduler evaluation matrix.

    Every (scenario, scheduler, sequence) simulation is an independent
    task fanned over ``config.runtime`` (the PR-2 execution backend), so
    the whole matrix parallelises across workers with one broadcast.
    Per scenario, all schedulers see identical pre-sampled sequences.

    ``metric`` / ``backfill`` override every scenario's protocol when
    given; ``config`` (if given) pins the sequence count/length/seed and
    the runtime for the whole matrix, otherwise each scenario evaluates
    under its own protocol on the serial backend.  ``n_jobs`` shrinks
    every scenario's workload (smoke runs).

    Returns ``{scenario name: {scheduler name: EvalResult}}`` in input
    order — the artifact the CLI ``compare`` command serializes.
    """
    resolved = [get_scenario(s) for s in scenarios]
    if len({s.name for s in resolved}) != len(resolved):
        raise ValueError("scenario names must be unique")
    if not resolved:
        raise ValueError("need at least one scenario")
    items = _named_schedulers(schedulers)

    cells = []
    for scen in resolved:
        proto = scen.protocol
        cell_metric = metric or proto.metric
        metric_by_name(cell_metric)  # fail fast in the parent
        cell_config = config or proto.eval_config()
        sampler = SequenceSampler(
            scen.build_trace(n_jobs=n_jobs),
            cell_config.sequence_length,
            seed=cell_config.seed,
        )
        cells.append((
            sampler.sample_many(cell_config.n_sequences),
            scen.cluster,
            proto.backfill if backfill is None else backfill,
            cell_metric,
        ))

    eval_config = config or EvalConfig()
    with telemetry_run(
        eval_config.telemetry,
        meta={"command": "scenario_matrix", "scenarios": len(resolved)},
    ):
        values = _run_cells([s for _, s in items], cells, eval_config.runtime)
    return {
        scen.name: {
            name: EvalResult(values[ci][si])
            for si, (name, _) in enumerate(items)
        }
        for ci, scen in enumerate(resolved)
    }


# The generalization study (train one policy per scenario, evaluate every
# policy on every scenario) lives in repro.study; re-exported here so the
# whole evaluation surface stays one import.  Imported last — study code
# calls back into this module's internals at run time, not import time.
from .study import generalization_matrix, train_matrix  # noqa: E402
