"""High-level convenience API — the paper's evaluation protocol in three calls.

* :func:`train` — learn a policy on a trace for a metric (§V-A protocol);
* :func:`evaluate` — score one scheduler on a trace: the metric over
  ``n_sequences`` random windows of ``sequence_length`` jobs (§V-C2:
  10 × 1024 by default), with or without backfilling;
* :func:`compare` — evaluate many schedulers on the *same* windows (the
  paper: "across different scheduling algorithms, we used the same 10
  random job sequences to make fair comparisons") — one Table V/VI/X/XI
  cell per scheduler.

Results are :class:`EvalResult` — a ``float`` equal to the mean (so all
existing numeric code keeps working) that also carries the per-sequence
values, ``std`` and ``n``, the spread the paper's tables summarise.

Execution runtime
-----------------
Sequences are independent simulations, so both calls fan them out through
:mod:`repro.runtime`: ``EvalConfig.runtime`` selects the backend
(``RuntimeConfig(backend="process", workers=N)`` for a process pool).
Sequences are pre-sampled in the parent and dispatched by index, and
per-sequence values are reassembled in sampling order — scores are
bit-identical for any backend and worker count.  Schedulers and sequences
are broadcast to workers once per call (for RL policies this is the
policy-weight broadcast), so each task ships two integers.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from .config import EvalConfig
from .rl.trainer import train as _train
from .runtime import make_backend
from .schedulers.base import Scheduler
from .sim.metrics import metric_by_name
from .sim.simulator import run_scheduler
from .workloads.sampler import SequenceSampler
from .workloads.swf import SWFTrace

__all__ = ["train", "evaluate", "compare", "EvalResult"]

train = _train


class EvalResult(float):
    """Mean metric over the test sequences, plus the per-sequence spread.

    Behaves exactly like ``float(mean)`` in comparisons, arithmetic and
    formatting; ``values`` / ``std`` / ``n`` expose the distribution.
    """

    values: np.ndarray

    def __new__(cls, values) -> "EvalResult":
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("EvalResult needs a non-empty 1-D value array")
        self = super().__new__(cls, float(arr.mean()))
        self.values = arr
        return self

    @property
    def mean(self) -> float:
        return float(self)

    @property
    def std(self) -> float:
        """Population standard deviation across sequences."""
        return float(self.values.std())

    @property
    def n(self) -> int:
        return int(self.values.size)

    def __repr__(self) -> str:
        return f"EvalResult(mean={float(self):.6g}, std={self.std:.6g}, n={self.n})"

    def __reduce__(self):
        return (EvalResult, (self.values,))


# ----------------------------------------------------------------------
# worker-side task functions (top-level: picklable by reference)
# ----------------------------------------------------------------------
def _install_eval_state(state, schedulers, sequences, n_procs, backfill, metric):
    """One-shot broadcast of everything a worker needs per evaluate/compare
    call; subsequent tasks reference it by index."""
    state["schedulers"] = schedulers
    state["sequences"] = sequences
    state["n_procs"] = n_procs
    state["backfill"] = backfill
    state["metric_fn"] = metric_by_name(metric)[0]


def _eval_task(state, task):
    """Score scheduler ``si`` on sequence ``qi``; returns the raw metric."""
    si, qi = task
    completed = run_scheduler(
        state["sequences"][qi],
        state["n_procs"],
        state["schedulers"][si],
        backfill=state["backfill"],
    )
    return float(state["metric_fn"](completed, state["n_procs"]))


def _evaluate_matrix(
    schedulers: Sequence[Scheduler],
    trace: SWFTrace,
    metric: str,
    backfill: bool,
    config: EvalConfig,
) -> np.ndarray:
    """Per-(scheduler, sequence) metric values, ``(S, Q)``, on the
    configured runtime.  Every scheduler sees the identical pre-sampled
    sequence list, and results are assembled in (scheduler, sequence)
    order regardless of backend or worker count."""
    metric_by_name(metric)  # fail fast in the parent on unknown metrics
    sampler = SequenceSampler(trace, config.sequence_length, seed=config.seed)
    sequences = sampler.sample_many(config.n_sequences)
    tasks = [
        (si, qi) for si in range(len(schedulers)) for qi in range(len(sequences))
    ]
    with make_backend(config.runtime) as backend:
        backend.broadcast(
            _install_eval_state,
            list(schedulers),
            sequences,
            trace.max_procs,
            backfill,
            metric,
        )
        values = backend.map(_eval_task, tasks, chunksize=config.runtime.chunksize)
    return np.array(values, dtype=np.float64).reshape(
        len(schedulers), len(sequences)
    )


def evaluate(
    scheduler: Scheduler,
    trace: SWFTrace,
    metric: str = "bsld",
    backfill: bool = False,
    config: EvalConfig | None = None,
) -> EvalResult:
    """Metric of ``scheduler`` over seeded random test sequences.

    Returns an :class:`EvalResult`: the mean as a float, with the
    per-sequence values and standard deviation attached.
    """
    config = config or EvalConfig()
    matrix = _evaluate_matrix([scheduler], trace, metric, backfill, config)
    return EvalResult(matrix[0])


def compare(
    schedulers: Sequence[Scheduler] | Mapping[str, Scheduler],
    trace: SWFTrace,
    metric: str = "bsld",
    backfill: bool = False,
    config: EvalConfig | None = None,
) -> dict[str, EvalResult]:
    """Evaluate several schedulers on identical sequences; returns
    ``{scheduler name: EvalResult}`` in input order."""
    config = config or EvalConfig()
    if isinstance(schedulers, Mapping):
        items = list(schedulers.items())
    else:
        items = [(s.name, s) for s in schedulers]
    if len({name for name, _ in items}) != len(items):
        raise ValueError("scheduler names must be unique")
    matrix = _evaluate_matrix(
        [s for _, s in items], trace, metric, backfill, config
    )
    return {
        name: EvalResult(matrix[i]) for i, (name, _) in enumerate(items)
    }
