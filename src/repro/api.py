"""High-level convenience API — the paper's evaluation protocol in three calls.

* :func:`train` — learn a policy on a trace for a metric (§V-A protocol);
* :func:`evaluate` — score one scheduler on a trace: mean metric over
  ``n_sequences`` random windows of ``sequence_length`` jobs (§V-C2:
  10 × 1024 by default), with or without backfilling;
* :func:`compare` — evaluate many schedulers on the *same* windows (the
  paper: "across different scheduling algorithms, we used the same 10
  random job sequences to make fair comparisons") — one Table V/VI/X/XI
  cell per scheduler.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from .config import EvalConfig
from .rl.trainer import train as _train
from .schedulers.base import Scheduler
from .sim.metrics import metric_by_name
from .sim.simulator import run_scheduler
from .workloads.sampler import SequenceSampler
from .workloads.swf import SWFTrace

__all__ = ["train", "evaluate", "compare"]

train = _train


def evaluate(
    scheduler: Scheduler,
    trace: SWFTrace,
    metric: str = "bsld",
    backfill: bool = False,
    config: EvalConfig | None = None,
) -> float:
    """Mean metric of ``scheduler`` over seeded random test sequences."""
    config = config or EvalConfig()
    fn, _ = metric_by_name(metric)
    sampler = SequenceSampler(trace, config.sequence_length, seed=config.seed)
    values = []
    for _ in range(config.n_sequences):
        completed = run_scheduler(
            sampler.sample(), trace.max_procs, scheduler, backfill=backfill
        )
        values.append(fn(completed, trace.max_procs))
    return float(np.mean(values))


def compare(
    schedulers: Sequence[Scheduler] | Mapping[str, Scheduler],
    trace: SWFTrace,
    metric: str = "bsld",
    backfill: bool = False,
    config: EvalConfig | None = None,
) -> dict[str, float]:
    """Evaluate several schedulers on identical sequences; returns
    ``{scheduler name: mean metric}`` in input order."""
    config = config or EvalConfig()
    if isinstance(schedulers, Mapping):
        items = list(schedulers.items())
    else:
        items = [(s.name, s) for s in schedulers]
    if len({name for name, _ in items}) != len(items):
        raise ValueError("scheduler names must be unique")
    fn, _ = metric_by_name(metric)

    results: dict[str, float] = {}
    for name, scheduler in items:
        sampler = SequenceSampler(trace, config.sequence_length, seed=config.seed)
        values = [
            fn(
                run_scheduler(
                    sampler.sample(), trace.max_procs, scheduler, backfill=backfill
                ),
                trace.max_procs,
            )
            for _ in range(config.n_sequences)
        ]
        results[name] = float(np.mean(values))
    return results
