"""Every tunable of the reproduction, with the paper's defaults.

Grouped into frozen dataclasses so experiment code can't mutate shared
state.  Values quoted from the paper:

* ``MAX_OBSV_SIZE = 128`` observable jobs (§IV-B3);
* 100 trajectories/epoch, 256 jobs per trajectory, 80 update iterations
  per epoch, learning rate 1e-3 (§V-A);
* test sequences of 1024 jobs, 10 repetitions (§V-C2).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "EnvConfig",
    "PPOConfig",
    "TrainConfig",
    "EvalConfig",
    "RuntimeConfig",
    "ScenarioConfig",
    "StudyConfig",
    "TelemetryConfig",
    "TenantConfig",
    "ServeConfig",
    "FeatureLayoutError",
]


class FeatureLayoutError(ValueError):
    """A policy's observation layout cannot be deployed as requested.

    Raised either at :class:`repro.schedulers.RLSchedulerPolicy`
    construction time, when the policy network's input width disagrees
    with the :class:`EnvConfig` it is asked to observe through (the error
    that would otherwise surface as a shape mismatch deep inside the
    first ``select()``), or by ``retarget(..., on_mismatch="fail")`` when
    the policy's feature layout differs from the target scenario's native
    one and the caller asked for strict semantics.
    """


@dataclass(frozen=True)
class ScenarioConfig:
    """Pointer to a registered scenario (see :mod:`repro.scenarios`).

    Scenarios bundle a workload, a cluster and an evaluation protocol
    behind one name; this config selects one and optionally overrides the
    workload size/seed.  Resolution happens in :mod:`repro.scenarios`
    (``get_scenario(config.name)``) — the config itself is plain data so
    it can live inside the frozen train/eval configs and pickle cleanly
    to runtime workers.
    """

    name: str = "lublin-256"
    #: override the scenario workload's job count (None = scenario default)
    n_jobs: int | None = None
    #: override the scenario workload's generation seed (None = default)
    seed: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.n_jobs is not None and self.n_jobs <= 0:
            raise ValueError(f"n_jobs must be positive, got {self.n_jobs}")


@dataclass(frozen=True)
class RuntimeConfig:
    """Where independent simulations execute (see :mod:`repro.runtime`).

    ``backend="serial"`` runs everything in-process; ``"process"`` fans
    out over ``workers`` persistent ``multiprocessing`` workers.  Both
    produce bit-identical results for the same seeds — the backend is a
    pure throughput knob, pinned by the runtime golden tests.

    ``transport`` selects how process workers exchange array payloads:
    ``"pipe"`` (the bit-identical reference) ships everything through the
    pickled pipe messages; ``"shm"`` spills large ndarray payloads
    out-of-band into a :class:`repro.runtime.SharedArrayPool` so pipes
    carry only small control messages and (segment, offset, shape,
    dtype) descriptors.  Results are bit-identical either way — the
    transport is a pure bytes-over-pipe knob, pinned like the backend —
    and unpicklable/small payloads fall back losslessly to the inline
    path.  The serial backend ignores it (nothing crosses a process).
    """

    #: accepted execution backends
    BACKENDS = ("serial", "process")
    #: accepted array transports for the process backend
    TRANSPORTS = ("pipe", "shm")

    backend: str = "serial"
    workers: int = 1
    #: tasks per map dispatch; None picks ~4 chunks per worker
    chunksize: int | None = None
    #: array transport between processes: inline pickles ("pipe") or the
    #: zero-copy shared-memory plane ("shm")
    transport: str = "pipe"

    def __post_init__(self) -> None:
        if self.backend not in self.BACKENDS:
            raise ValueError(
                f"backend must be one of {self.BACKENDS}, got {self.backend!r}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.chunksize is not None and self.chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {self.chunksize}")
        if self.transport not in self.TRANSPORTS:
            raise ValueError(
                f"transport must be one of {self.TRANSPORTS}, "
                f"got {self.transport!r}"
            )

    @classmethod
    def from_workers(
        cls,
        workers: int,
        chunksize: int | None = None,
        transport: str = "pipe",
    ) -> "RuntimeConfig":
        """The CLI convention: ``--workers N`` means a process pool for
        N > 1 and the serial backend for N == 1."""
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        backend = "process" if workers > 1 else "serial"
        return cls(backend=backend, workers=workers, chunksize=chunksize,
                   transport=transport)


@dataclass(frozen=True)
class TelemetryConfig:
    """Observability knobs shared by train / evaluate / study runs.

    Telemetry is purely observational: enabling it changes no result bit
    (pinned by golden tests).  ``path`` selects the ``repro/telemetry@1``
    JSONL sink (see :mod:`repro.telemetry.sink`); ``summary`` logs the
    end-of-run summary tree through the ``repro.telemetry`` logger.
    Enable telemetry *before* runtime backends start — pool workers
    inherit the enabled flag at spawn, which the config-driven entry
    points (CLI ``--telemetry``) guarantee by construction.
    """

    enabled: bool = False
    #: JSONL sink path (None = record in memory only)
    path: str | None = None
    #: log the end-of-run summary tree
    summary: bool = True

    def __post_init__(self) -> None:
        if self.path is not None and not self.path:
            raise ValueError("telemetry path must be non-empty (or None)")


@dataclass(frozen=True)
class EnvConfig:
    """SchedGym observation / action space parameters."""

    max_obsv_size: int = 128      # MAX_OBSV_SIZE: visible job slots
    job_features: int = 7         # features per visible job (see env.py)
    backfill: bool = False
    wait_scale: float = 86_400.0      # saturating scale for wait-time feature
    runtime_scale: float = 5 * 86_400.0  # log-normalisation cap for runtimes
    #: append per-resource memory columns (7: job memory-demand fraction,
    #: 8: free-memory fraction) for memory-constrained scenarios; the
    #: default 7-feature layout is byte-identical with this off
    memory_features: bool = False

    #: observation columns filled only when ``memory_features`` is on
    MEM_DEMAND_COL = 7
    MEM_FREE_COL = 8

    def __post_init__(self) -> None:
        if self.max_obsv_size <= 0:
            raise ValueError("max_obsv_size must be positive")
        if self.job_features < 5:
            raise ValueError("need at least the 5 core job features")
        if self.memory_features and self.job_features < 9:
            raise ValueError(
                "memory_features needs job_features >= 9 (columns 7 and 8 "
                f"carry the per-resource demands), got {self.job_features}"
            )

    @property
    def observation_shape(self) -> tuple[int, int]:
        return (self.max_obsv_size, self.job_features)

    def feature_compat(self, target: "EnvConfig") -> str:
        """How a policy observing through *this* layout relates to an
        environment whose native layout is ``target``.

        A deployed policy always builds observations through its own
        :class:`EnvConfig`, so any combination *runs*; this classifies
        what the policy can and cannot see so callers implement explicit
        adapt-or-fail semantics instead of silently degrading:

        ``"native"``
            same per-resource layout — nothing is lost;
        ``"memory-blind"``
            the target carries memory features this policy was not
            trained with: it schedules a memory-constrained cluster
            without seeing memory demands or availability;
        ``"memory-neutral"``
            this policy carries memory features the target lacks: on an
            unconstrained cluster its memory columns read the neutral
            values (zero demand fraction, all memory free), which are
            valid in-distribution inputs.
        """
        if self.memory_features == target.memory_features:
            return "native"
        if target.memory_features:
            return "memory-blind"
        return "memory-neutral"


@dataclass(frozen=True)
class PPOConfig:
    """PPO-clip hyper-parameters (SpinningUp defaults the paper used)."""

    #: accepted policy-update implementations
    UPDATE_PATHS = ("dense", "sparse")

    clip_ratio: float = 0.2
    pi_lr: float = 1e-3           # paper: "the learning rate is 1e-3"
    vf_lr: float = 1e-3
    train_pi_iters: int = 80      # paper: "80 iterations to update"
    train_v_iters: int = 80
    gamma: float = 1.0            # episodic task with terminal reward
    lam: float = 0.97             # GAE-lambda
    target_kl: float = 0.01       # early-stop threshold
    entropy_coef: float = 0.0
    max_grad_norm: float = 10.0
    minibatch_size: int = 4096    # bounds peak memory of each update pass
    #: policy-step implementation: ``"dense"`` forwards the full padded
    #: ``(batch, M)`` slot block (the reference path), ``"sparse"``
    #: forwards only the valid rows through the segment-batched autograd
    #: ops — same gradients to round-off, cost scales with valid rows.
    #: Sparse needs a policy exposing ``score_rows_grad`` (the kernel
    #: preset); the agent fails loudly at construction otherwise.
    update_path: str = "dense"

    def __post_init__(self) -> None:
        if not 0 < self.clip_ratio < 1:
            raise ValueError("clip_ratio must be in (0, 1)")
        if not 0 <= self.gamma <= 1 or not 0 <= self.lam <= 1:
            raise ValueError("gamma and lam must be in [0, 1]")
        if self.update_path not in self.UPDATE_PATHS:
            raise ValueError(
                f"update_path must be one of {self.UPDATE_PATHS}, "
                f"got {self.update_path!r}"
            )


@dataclass(frozen=True)
class TrainConfig:
    """Epoch-level training protocol (§V-A)."""

    #: accepted rollout-collection modes
    ROLLOUT_MODES = ("locked", "async")
    #: what happens to an episode whose weight snapshot is older than
    #: ``staleness`` updates when it is consumed
    STALE_MODES = ("drop", "reweight")

    epochs: int = 100
    trajectories_per_epoch: int = 100
    trajectory_length: int = 256  # jobs per training sequence
    seed: int = 0
    use_trajectory_filter: bool = False
    filter_probe_samples: int = 200   # SJF probes to build the Fig. 7 distribution
    filter_phase1_fraction: float = 0.6  # fraction of epochs in filtered phase
    vectorized: bool = True       # collect rollouts through the vec env
    n_envs: int = 16              # environments stepped in lock-step
    runtime: RuntimeConfig = RuntimeConfig()  # where env shards execute
    #: ``"locked"`` collects rollouts through the lock-step sharded vec env
    #: (policy forward in the parent, two IPC transfers per env step);
    #: ``"async"`` runs whole episodes inside the workers against a policy
    #: replica (one transfer per episode) via the episode-granular
    #: :class:`repro.runtime.ActorRuntime`.
    rollout_mode: str = "locked"
    #: async mode only: how many PPO updates ahead the learner may run
    #: while workers still collect against an older weight snapshot.
    #: 0 = fully synchronous (bit-identical to ``"locked"``); K > 0
    #: prefetches up to K future epochs of episodes so workers stay busy
    #: through the update/validation phase.
    staleness: int = 0
    #: episodes staler than the bound when consumed: ``"drop"`` excludes
    #: them from the update batch, ``"reweight"`` keeps them and lets
    #: PPO's importance ratios (new-policy vs stored behaviour log-probs)
    #: do the off-policy correction.  Both are counted in the
    #: :class:`~repro.rl.trainer.EpochRecord`.
    stale_mode: str = "drop"
    #: shard minibatch gradient computation over this many workers
    #: (> 1 spawns a process pool holding policy/value replicas; gradients
    #: are reduced in the parent before each optimizer step).  1 = the
    #: plain in-process update.
    grad_workers: int = 1
    #: train inside a named scenario (workload + cluster); None = caller
    #: supplies the trace and cluster explicitly
    scenario: ScenarioConfig | None = None
    #: observability (spans/metrics + optional JSONL sink); None = off
    telemetry: TelemetryConfig | None = None

    def __post_init__(self) -> None:
        if min(self.epochs, self.trajectories_per_epoch, self.trajectory_length) <= 0:
            raise ValueError("training sizes must be positive")
        if self.n_envs <= 0:
            raise ValueError("n_envs must be positive")
        if self.grad_workers < 1:
            raise ValueError(
                f"grad_workers must be >= 1, got {self.grad_workers}"
            )
        if self.rollout_mode not in self.ROLLOUT_MODES:
            raise ValueError(
                f"rollout_mode must be one of {self.ROLLOUT_MODES}, "
                f"got {self.rollout_mode!r}"
            )
        if self.staleness < 0:
            raise ValueError(f"staleness must be >= 0, got {self.staleness}")
        if self.stale_mode not in self.STALE_MODES:
            raise ValueError(
                f"stale_mode must be one of {self.STALE_MODES}, "
                f"got {self.stale_mode!r}"
            )
        if not isinstance(self.runtime, RuntimeConfig):
            raise TypeError("runtime must be a RuntimeConfig")
        if self.scenario is not None and not isinstance(self.scenario, ScenarioConfig):
            raise TypeError("scenario must be a ScenarioConfig (or None)")
        if self.telemetry is not None and not isinstance(self.telemetry, TelemetryConfig):
            raise TypeError("telemetry must be a TelemetryConfig (or None)")


@dataclass(frozen=True)
class EvalConfig:
    """Test-time protocol: 10 sequences of 1024 jobs (§V-C2)."""

    n_sequences: int = 10
    sequence_length: int = 1024
    seed: int = 42
    runtime: RuntimeConfig = RuntimeConfig()  # where sequence runs execute
    #: evaluate inside a named scenario (workload + cluster + protocol);
    #: None = caller supplies the trace explicitly
    scenario: ScenarioConfig | None = None
    #: observability (spans/metrics + optional JSONL sink); None = off
    telemetry: TelemetryConfig | None = None

    def __post_init__(self) -> None:
        if self.n_sequences <= 0 or self.sequence_length <= 0:
            raise ValueError("n_sequences and sequence_length must be positive")
        if not isinstance(self.runtime, RuntimeConfig):
            raise TypeError("runtime must be a RuntimeConfig")
        if self.scenario is not None and not isinstance(self.scenario, ScenarioConfig):
            raise TypeError("scenario must be a ScenarioConfig (or None)")
        if self.telemetry is not None and not isinstance(self.telemetry, TelemetryConfig):
            raise TypeError("telemetry must be a TelemetryConfig (or None)")


@dataclass(frozen=True)
class TenantConfig:
    """One logical cluster multiplexed by the serving daemon.

    Each tenant gets an independent
    :class:`~repro.sim.core.OnlineSchedulingEngine` (own cluster, own
    pending queue, own simulated clock) plus its own decision policy and
    telemetry labels.  ``scheduler`` is a heuristic name from
    :data:`repro.schedulers.ALL_HEURISTICS`; ``policy_path`` instead loads
    a trained :class:`~repro.schedulers.RLSchedulerPolicy` ``.npz`` (and
    takes precedence).  Like :class:`ScenarioConfig`, this is plain data —
    resolution happens in :mod:`repro.serve`.
    """

    #: accepted backfilling modes (mirrors ``EngineCore.BACKFILL_MODES``)
    BACKFILL_MODES = (False, True, "easy", "conservative")

    name: str = "default"
    scheduler: str = "FCFS"
    n_procs: int = 256
    #: per-processor memory capacity (None = memory-unconstrained)
    memory: float | None = None
    backfill: bool | str = False
    #: path to a trained policy ``.npz``; overrides ``scheduler``
    policy_path: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.n_procs <= 0:
            raise ValueError(f"n_procs must be positive, got {self.n_procs}")
        if self.memory is not None and self.memory <= 0:
            raise ValueError(f"memory must be positive, got {self.memory}")
        if self.backfill not in self.BACKFILL_MODES:
            raise ValueError(
                f"backfill must be one of {self.BACKFILL_MODES}, "
                f"got {self.backfill!r}"
            )
        if not self.scheduler and self.policy_path is None:
            raise ValueError("tenant needs a scheduler name or a policy_path")


@dataclass(frozen=True)
class ServeConfig:
    """The scheduler-as-a-service daemon (see :mod:`repro.serve`).

    One asyncio process listens on ``host:port`` speaking the versioned
    JSON line protocol and multiplexes every configured tenant.  ``port``
    0 binds an ephemeral port (the daemon prints the bound address on
    stdout).  ``completed_history`` caps the finished-job records each
    tenant retains for ``status`` queries — the serving path must hold
    memory proportional to the live job set, not the lifetime stream.
    """

    host: str = "127.0.0.1"
    port: int = 7653
    tenants: tuple = (TenantConfig(),)
    #: observability (spans/metrics + optional JSONL sink); None = off
    telemetry: TelemetryConfig | None = None
    #: finished-job records retained per tenant for ``status`` queries
    completed_history: int = 10_000

    def __post_init__(self) -> None:
        object.__setattr__(self, "tenants", tuple(self.tenants))
        if not 0 <= self.port <= 65_535:
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
        if not self.host:
            raise ValueError("host must be non-empty")
        if not self.tenants:
            raise ValueError("serve needs at least one tenant")
        for tenant in self.tenants:
            if not isinstance(tenant, TenantConfig):
                raise TypeError("tenants must be TenantConfig instances")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique, got {names}")
        if self.completed_history < 0:
            raise ValueError(
                f"completed_history must be >= 0, got {self.completed_history}"
            )
        if self.telemetry is not None and not isinstance(self.telemetry, TelemetryConfig):
            raise TypeError("telemetry must be a TelemetryConfig (or None)")


@dataclass(frozen=True)
class StudyConfig:
    """The cross-scenario generalization study (paper Table VII).

    One policy is trained per scenario (checkpointed into ``zoo_dir``;
    scenarios whose ``<name>.npz`` already exists skip training), then
    every trained policy is evaluated against every scenario alongside
    the heuristic baselines — see :mod:`repro.study`.

    ``None`` for the eval knobs (``n_sequences`` / ``sequence_length``)
    and for ``metric`` means each scenario's own protocol applies;
    ``n_jobs`` shrinks every scenario workload (smoke runs).
    ``on_mismatch`` selects the cross-feature-layout semantics of
    :meth:`repro.schedulers.RLSchedulerPolicy.retarget`: ``"adapt"``
    deploys a policy on scenarios with a different per-resource layout
    (recording the compatibility mode in the artifact), ``"fail"``
    raises :class:`FeatureLayoutError` instead.
    """

    #: accepted cross-layout deployment semantics
    MISMATCH_MODES = ("adapt", "fail")

    scenarios: tuple = ()         # scenario names; () = all registered
    zoo_dir: str = "zoo"
    heuristics: tuple = ("FCFS", "SJF", "WFP3", "UNICEP", "F1")
    policy_preset: str = "kernel"
    metric: str | None = None     # override every scenario's protocol metric
    seed: int = 0                 # training seed (workloads keep scenario seeds)
    # -- training knobs (one Trainer per scenario) ----------------------
    epochs: int = 16
    trajectories_per_epoch: int = 14
    trajectory_length: int = 64
    max_obsv_size: int = 32
    use_trajectory_filter: bool = False
    #: rollout collection for every per-scenario Trainer (see
    #: :class:`TrainConfig`): ``"locked"`` or ``"async"``
    rollout_mode: str = "locked"
    #: async staleness bound per trainer (ignored when locked)
    staleness: int = 0
    # -- evaluation knobs (None = scenario protocol) --------------------
    n_jobs: int | None = None
    n_sequences: int | None = None
    sequence_length: int | None = None
    on_mismatch: str = "adapt"
    runtime: RuntimeConfig = RuntimeConfig()
    #: observability (spans/metrics + optional JSONL sink); None = off
    telemetry: TelemetryConfig | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "heuristics", tuple(self.heuristics))
        if not self.zoo_dir:
            raise ValueError("zoo_dir must be non-empty")
        if min(self.epochs, self.trajectories_per_epoch,
               self.trajectory_length, self.max_obsv_size) <= 0:
            raise ValueError("training sizes must be positive")
        for name, value in (("n_jobs", self.n_jobs),
                            ("n_sequences", self.n_sequences),
                            ("sequence_length", self.sequence_length)):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive (or None), got {value}")
        if self.on_mismatch not in self.MISMATCH_MODES:
            raise ValueError(
                f"on_mismatch must be one of {self.MISMATCH_MODES}, "
                f"got {self.on_mismatch!r}"
            )
        if self.rollout_mode not in TrainConfig.ROLLOUT_MODES:
            raise ValueError(
                f"rollout_mode must be one of {TrainConfig.ROLLOUT_MODES}, "
                f"got {self.rollout_mode!r}"
            )
        if self.staleness < 0:
            raise ValueError(f"staleness must be >= 0, got {self.staleness}")
        if not isinstance(self.runtime, RuntimeConfig):
            raise TypeError("runtime must be a RuntimeConfig")
        if self.telemetry is not None and not isinstance(self.telemetry, TelemetryConfig):
            raise TypeError("telemetry must be a TelemetryConfig (or None)")
