"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``traces``
    List available workloads and their Table II characteristics.
``generate``
    Write a synthetic workload to an SWF file.
``evaluate``
    Score heuristic schedulers (and optionally a saved RL model) on a
    workload — one Table V/VI/X/XI row from the shell.
``train``
    Train an RL scheduling policy and save it as ``.npz``.

Examples
--------
::

    python -m repro traces
    python -m repro generate PIK-IPLEX --jobs 10000 -o pik.swf
    python -m repro evaluate Lublin-1 --metric bsld --backfill
    python -m repro evaluate Lublin-1 --workers 4
    python -m repro train Lublin-1 --metric bsld --epochs 20 -o model.npz
    python -m repro train Lublin-1 --workers 4 -o model.npz
    python -m repro evaluate Lublin-1 --model model.npz
"""

from __future__ import annotations

import argparse
import sys

from . import (
    EvalConfig,
    EnvConfig,
    PPOConfig,
    RuntimeConfig,
    TrainConfig,
    compare,
    load_trace,
    train,
)
from .schedulers import HEURISTICS, RLSchedulerPolicy
from .sim.metrics import METRICS
from .workloads import available_traces, characterize, write_swf

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RLScheduler reproduction: RL-based HPC batch job scheduling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("traces", help="list workloads and their statistics")
    p.add_argument("--jobs", type=int, default=2000)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("generate", help="write a synthetic workload to SWF")
    p.add_argument("name", choices=available_traces())
    p.add_argument("--jobs", type=int, default=10_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", required=True)

    p = sub.add_parser("evaluate", help="compare schedulers on a workload")
    p.add_argument("name")
    p.add_argument("--jobs", type=int, default=4000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--metric", choices=sorted(METRICS), default="bsld")
    p.add_argument("--backfill", action="store_true")
    p.add_argument("--sequences", type=int, default=4)
    p.add_argument("--length", type=int, default=256)
    p.add_argument("--swf-dir", default=None)
    p.add_argument("--model", default=None,
                   help="path to a saved RL policy (.npz) to include")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="fan sequences over N worker processes (1 = serial)")

    p = sub.add_parser("train", help="train an RL policy and save it")
    p.add_argument("name")
    p.add_argument("--jobs", type=int, default=4000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--metric", choices=sorted(METRICS), default="bsld")
    p.add_argument("--epochs", type=int, default=16)
    p.add_argument("--trajectories", type=int, default=14)
    p.add_argument("--length", type=int, default=64)
    p.add_argument("--obsv", type=int, default=32,
                   help="MAX_OBSV_SIZE (paper default 128)")
    p.add_argument("--policy", choices=["kernel", "mlp_v1", "mlp_v2",
                                        "mlp_v3", "lenet"], default="kernel")
    p.add_argument("--filter", action="store_true",
                   help="enable trajectory filtering (recommended for PIK)")
    p.add_argument("--swf-dir", default=None)
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="shard rollout envs over N worker processes (1 = serial)")
    p.add_argument("-o", "--output", required=True)

    return parser


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _cmd_traces(args) -> int:
    print(f"{'Name':<14} {'size':>7} {'it(s)':>8} {'rt(s)':>8} {'nt':>8}")
    for name in available_traces():
        trace = load_trace(name, n_jobs=args.jobs, seed=args.seed)
        print(characterize(trace).table_row())
    return 0


def _cmd_generate(args) -> int:
    trace = load_trace(args.name, n_jobs=args.jobs, seed=args.seed)
    write_swf(trace, args.output)
    print(f"wrote {len(trace)} jobs ({trace.max_procs} procs) to {args.output}")
    return 0


def _cmd_evaluate(args) -> int:
    trace = load_trace(args.name, n_jobs=args.jobs, seed=args.seed,
                       swf_dir=args.swf_dir)
    schedulers = [cls() for cls in HEURISTICS.values()]
    if args.model:
        rl = RLSchedulerPolicy.load(args.model)
        # Retarget the saved policy at this trace's cluster through the
        # checked setter: a bogus size fails loudly here, not mid-run.
        rl.n_procs = trace.max_procs
        schedulers.append(rl)
    config = EvalConfig(n_sequences=args.sequences,
                        sequence_length=args.length, seed=42,
                        runtime=RuntimeConfig.from_workers(args.workers))
    scores = compare(schedulers, trace, metric=args.metric,
                     backfill=args.backfill, config=config)
    mode = "backfill" if args.backfill else "no backfill"
    print(f"{args.metric} on {trace.name} ({mode}, "
          f"{args.sequences}x{args.length} jobs, workers={args.workers}):")
    for name, value in scores.items():
        print(f"  {name:<14} {float(value):12.3f} ± {value.std:.3f}")
    return 0


def _cmd_train(args) -> int:
    trace = load_trace(args.name, n_jobs=args.jobs, seed=args.seed,
                       swf_dir=args.swf_dir)
    result = train(
        trace,
        metric=args.metric,
        policy_preset=args.policy,
        env_config=EnvConfig(max_obsv_size=args.obsv),
        ppo_config=PPOConfig(),
        train_config=TrainConfig(
            epochs=args.epochs,
            trajectories_per_epoch=args.trajectories,
            trajectory_length=args.length,
            seed=args.seed,
            use_trajectory_filter=args.filter,
            runtime=RuntimeConfig.from_workers(args.workers),
        ),
    )
    sched = result.as_scheduler()
    sched.save(args.output)
    curve = result.metric_curve()
    print(f"trained {args.policy} on {trace.name} for {args.metric}: "
          f"epoch-0 {curve[0]:.2f} -> best {curve.min():.2f} "
          f"(epoch {result.best_epoch})")
    print(f"saved to {args.output}")
    return 0


_COMMANDS = {
    "traces": _cmd_traces,
    "generate": _cmd_generate,
    "evaluate": _cmd_evaluate,
    "train": _cmd_train,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
