"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``traces``
    List available workloads and their Table II characteristics.
``scenarios``
    List the registered scenarios (workload × cluster × protocol).
``generate``
    Write a synthetic workload to an SWF file.
``evaluate``
    Score heuristic schedulers (and optionally a saved RL model) on a
    workload or a scenario — one Table V/VI/X/XI row from the shell.
``compare``
    The scenario × scheduler evaluation matrix, optionally written to a
    JSON artifact.
``train``
    Train an RL scheduling policy and save it as ``.npz``.
``study``
    The cross-scenario generalization study (Table VII): train one
    policy per scenario into a checkpoint zoo (resumable), evaluate
    every policy on every scenario alongside the heuristics, and write
    the generalization-matrix JSON artifact.
``serve``
    Run the scheduler-as-a-service daemon: an asyncio socket front end
    multiplexing N logical clusters (tenants) over one process, each
    with its own policy (heuristic or saved RL model).
``submit``
    Client for a running daemon: submit a single job or replay an SWF
    file, query status/stats, drain.

Examples
--------
::

    python -m repro traces
    python -m repro scenarios
    python -m repro generate PIK-IPLEX --jobs 10000 -o pik.swf
    python -m repro evaluate Lublin-1 --metric bsld --backfill
    python -m repro evaluate --scenario lublin-256-mem --workers 4
    python -m repro evaluate --scenario pik-iplex --no-backfill
    python -m repro compare --scenarios lublin-256,bursty-sdsc \\
        --schedulers FCFS,SJF --workers 2 -o matrix.json
    python -m repro train Lublin-1 --metric bsld --epochs 20 -o model.npz
    python -m repro train --scenario lublin-64 -o model.npz
    python -m repro evaluate Lublin-1 --model model.npz
    python -m repro study --scenarios lublin-64,lublin-256-mem \\
        --jobs 400 --epochs 2 --trajectories 2 --length 16 --obsv 8 \\
        --sequences 2 --eval-length 24 --workers 2 -o generalization.json
    python -m repro serve --port 7653 \\
        --tenant batch:FCFS:256:easy --tenant rl:model.npz:256 \\
        --telemetry serve_telemetry.jsonl
    python -m repro submit --port 7653 --tenant batch \\
        --job-id 1 --procs 4 --runtime 600
    python -m repro submit --port 7653 --tenant batch --swf trace.swf
    python -m repro submit --port 7653 --drain --stop
"""

from __future__ import annotations

import argparse
import json
import logging
import sys

from . import (
    EvalConfig,
    EnvConfig,
    PPOConfig,
    RuntimeConfig,
    ScenarioConfig,
    ServeConfig,
    StudyConfig,
    TelemetryConfig,
    TenantConfig,
    TrainConfig,
    compare,
    generalization_matrix,
    load_trace,
    scenario_matrix,
    train,
)
from .scenarios import available_scenarios, get_scenario
from .schedulers import HEURISTICS, RLSchedulerPolicy, make_scheduler
from .sim.metrics import METRICS, metric_by_name
from .workloads import available_traces, characterize, write_swf

__all__ = ["main", "build_parser", "setup_logging"]

logger = logging.getLogger("repro.cli")


def setup_logging(verbose: bool = False, quiet: bool = False) -> None:
    """Route ``repro.*`` diagnostics to stderr at the chosen level.

    Command *output* (tables, artifacts, result rows) stays on stdout via
    plain ``print``; everything advisory — progress, notes, warnings —
    goes through per-module loggers so shell pipelines over stdout stay
    machine-parseable.  Idempotent: re-running replaces the handler, so
    repeated ``main()`` calls (tests) don't stack duplicates.
    """
    level = logging.WARNING if quiet else (
        logging.DEBUG if verbose else logging.INFO
    )
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(name)s: %(message)s"))
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RLScheduler reproduction: RL-based HPC batch job scheduling",
    )
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="debug-level diagnostics on stderr")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="warnings and errors only on stderr")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("traces", help="list workloads and their statistics")
    p.add_argument("--jobs", type=int, default=2000)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("scenarios", help="list registered scenarios")
    p.add_argument("action", nargs="?", choices=["list"], default="list")

    p = sub.add_parser("generate", help="write a synthetic workload to SWF")
    p.add_argument("name", choices=available_traces())
    p.add_argument("--jobs", type=int, default=10_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", required=True)

    p = sub.add_parser("evaluate", help="compare schedulers on a workload")
    p.add_argument("name", nargs="?", default=None,
                   help="trace name (omit when using --scenario)")
    p.add_argument("--scenario", default=None,
                   help="registered scenario name (workload + cluster + "
                        "protocol defaults)")
    p.add_argument("--jobs", type=int, default=4000)
    p.add_argument("--seed", type=int, default=None,
                   help="workload-generation seed; with --scenario it also "
                        "overrides the protocol's sequence-sampling seed "
                        "(default: 0 for plain traces, scenario defaults "
                        "otherwise)")
    p.add_argument("--metric", choices=sorted(METRICS), default=None)
    p.add_argument("--backfill", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="force backfilling on (--backfill) or off "
                        "(--no-backfill); default: the scenario protocol, "
                        "off for plain traces")
    p.add_argument("--sequences", type=int, default=4)
    p.add_argument("--length", type=int, default=256)
    p.add_argument("--swf-dir", default=None)
    p.add_argument("--model", default=None,
                   help="path to a saved RL policy (.npz) to include")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="fan sequences over N worker processes (1 = serial)")
    p.add_argument("--transport", choices=["pipe", "shm"], default="pipe",
                   help="worker array transport: pickled pipes (reference) "
                        "or the zero-copy shared-memory plane (same "
                        "results, far fewer pipe bytes)")
    p.add_argument("--telemetry", metavar="PATH", default=None,
                   help="enable telemetry and write the repro/telemetry@1 "
                        "JSONL trace to PATH")

    p = sub.add_parser(
        "compare", help="scenario × scheduler evaluation matrix"
    )
    p.add_argument("--scenarios", default=None,
                   help="comma-separated scenario names (default: all "
                        "registered)")
    p.add_argument("--schedulers", default="FCFS,SJF,WFP3,UNICEP,F1",
                   help="comma-separated scheduler names")
    p.add_argument("--metric", choices=sorted(METRICS), default=None,
                   help="override every scenario's protocol metric")
    p.add_argument("--backfill", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="force backfilling on/off for every scenario "
                        "(default: each scenario's protocol)")
    p.add_argument("--jobs", type=int, default=None,
                   help="shrink every scenario workload to N jobs")
    p.add_argument("--sequences", type=int, default=4)
    p.add_argument("--length", type=int, default=128)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="fan matrix cells over N worker processes")
    p.add_argument("--transport", choices=["pipe", "shm"], default="pipe",
                   help="worker array transport (see evaluate --transport)")
    p.add_argument("-o", "--output", default=None,
                   help="write the matrix as JSON")

    p = sub.add_parser("train", help="train an RL policy and save it")
    p.add_argument("name", nargs="?", default=None,
                   help="trace name (omit when using --scenario)")
    p.add_argument("--scenario", default=None,
                   help="registered scenario name to train inside")
    p.add_argument("--jobs", type=int, default=4000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--metric", choices=sorted(METRICS), default="bsld")
    p.add_argument("--epochs", type=int, default=16)
    p.add_argument("--trajectories", type=int, default=14)
    p.add_argument("--length", type=int, default=64)
    p.add_argument("--obsv", type=int, default=32,
                   help="MAX_OBSV_SIZE (paper default 128)")
    p.add_argument("--policy", choices=["kernel", "mlp_v1", "mlp_v2",
                                        "mlp_v3", "lenet"], default="kernel")
    p.add_argument("--filter", action="store_true",
                   help="enable trajectory filtering (recommended for PIK)")
    p.add_argument("--swf-dir", default=None)
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="shard rollout envs over N worker processes (1 = serial)")
    p.add_argument("--transport", choices=["pipe", "shm"], default="pipe",
                   help="worker array transport (see evaluate --transport); "
                        "applies to rollout, actor, and gradient workers")
    p.add_argument("--update-path", choices=["dense", "sparse"],
                   default="dense",
                   help="PPO update arithmetic: dense padded logits "
                        "(reference) or segment-batched sparse autograd "
                        "(kernel policy only, much faster at large "
                        "MAX_OBSV_SIZE)")
    p.add_argument("--grad-workers", type=_positive_int, default=1,
                   help="shard minibatch gradients over N worker processes "
                        "(1 = in-process backward)")
    p.add_argument("--rollout-mode", choices=["locked", "async"],
                   default="locked",
                   help="rollout collection: lock-step vectorized envs "
                        "(reference) or episode-granular async actors with "
                        "in-worker policy inference (one IPC transfer per "
                        "episode; with --staleness 0 bit-identical to "
                        "locked)")
    p.add_argument("--staleness", type=_nonnegative_int, default=0,
                   help="async rollouts: how many updates collection may "
                        "run ahead of learning (0 = fully synchronous)")
    p.add_argument("--stale-mode", choices=["drop", "reweight"],
                   default="drop",
                   help="episodes past the staleness bound: exclude from "
                        "the update (drop) or keep and let PPO's importance "
                        "ratios reweight them")
    p.add_argument("--telemetry", metavar="PATH", default=None,
                   help="enable telemetry and write the repro/telemetry@1 "
                        "JSONL trace to PATH")
    p.add_argument("-o", "--output", required=True)

    p = sub.add_parser(
        "study",
        help="cross-scenario generalization study (Table VII): train one "
             "policy per scenario, evaluate every policy on every scenario",
    )
    p.add_argument("--scenarios", default=None,
                   help="comma-separated scenario names (default: all "
                        "registered)")
    p.add_argument("--zoo-dir", default="zoo",
                   help="policy-checkpoint directory; scenarios whose "
                        "<name>.npz already exists skip training (resume)")
    p.add_argument("--heuristics", default="FCFS,SJF,WFP3,UNICEP,F1",
                   help="comma-separated heuristic baselines")
    p.add_argument("--policy", choices=["kernel", "mlp_v1", "mlp_v2",
                                        "mlp_v3", "lenet"], default="kernel")
    p.add_argument("--metric", choices=sorted(METRICS), default=None,
                   help="override every scenario's protocol metric")
    p.add_argument("--seed", type=int, default=0,
                   help="training seed (workloads keep scenario seeds)")
    p.add_argument("--jobs", type=int, default=None,
                   help="shrink every scenario workload to N jobs")
    p.add_argument("--epochs", type=int, default=16)
    p.add_argument("--trajectories", type=int, default=14)
    p.add_argument("--length", type=int, default=64,
                   help="training trajectory length (jobs per sequence)")
    p.add_argument("--obsv", type=int, default=32,
                   help="MAX_OBSV_SIZE (paper default 128)")
    p.add_argument("--filter", action="store_true",
                   help="enable trajectory filtering during training")
    p.add_argument("--sequences", type=int, default=None,
                   help="evaluation sequences per scenario "
                        "(default: each scenario's protocol)")
    p.add_argument("--eval-length", type=int, default=None,
                   help="evaluation sequence length (default: protocol)")
    p.add_argument("--on-mismatch", choices=["adapt", "fail"],
                   default="adapt",
                   help="deploying a policy on a scenario with a different "
                        "feature layout: adapt (record the compat mode) or "
                        "fail loudly")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="worker processes for training rollouts and the "
                        "evaluation fan-out (1 = serial)")
    p.add_argument("--transport", choices=["pipe", "shm"], default="pipe",
                   help="worker array transport (see evaluate --transport)")
    p.add_argument("--rollout-mode", choices=["locked", "async"],
                   default="locked",
                   help="training rollout collection for every zoo policy "
                        "(see train --rollout-mode)")
    p.add_argument("--staleness", type=_nonnegative_int, default=0,
                   help="async rollouts: staleness bound in updates "
                        "(0 = fully synchronous)")
    p.add_argument("--telemetry", metavar="PATH", default=None,
                   help="enable telemetry and write the repro/telemetry@1 "
                        "JSONL trace to PATH")
    p.add_argument("-o", "--output", default=None,
                   help="write the generalization-matrix JSON artifact")

    p = sub.add_parser(
        "serve",
        help="run the scheduler daemon (asyncio socket front end, "
             "multi-tenant)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7653,
                   help="TCP port (0 = ephemeral; the daemon prints the "
                        "bound address on stdout)")
    p.add_argument("--tenant", action="append", default=None,
                   metavar="NAME:SCHED:PROCS[:BACKFILL[:MEMORY]]",
                   help="add a logical cluster: SCHED is a heuristic name "
                        "or a saved policy .npz path; BACKFILL is "
                        "none/easy/conservative; MEMORY is per-proc "
                        "capacity. Repeatable; default: one "
                        "'default:FCFS:256' tenant")
    p.add_argument("--history", type=_nonnegative_int, default=10_000,
                   help="finished-job records retained per tenant for "
                        "status queries")
    p.add_argument("--telemetry", metavar="PATH", default=None,
                   help="enable telemetry and write the repro/telemetry@1 "
                        "JSONL trace to PATH")

    p = sub.add_parser(
        "submit",
        help="client for a running daemon: submit jobs, query, drain",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7653)
    p.add_argument("--tenant", default=None,
                   help="tenant name (optional for single-tenant daemons)")
    p.add_argument("--swf", default=None, metavar="FILE",
                   help="replay an SWF trace file job by job")
    p.add_argument("--limit", type=_positive_int, default=None,
                   help="with --swf: replay only the first N jobs")
    p.add_argument("--job-id", type=int, default=None,
                   help="single-job mode: job id")
    p.add_argument("--procs", type=_positive_int, default=1,
                   help="single-job mode: processors requested")
    p.add_argument("--runtime", type=float, default=None,
                   help="single-job mode: actual runtime in seconds")
    p.add_argument("--reqtime", type=float, default=None,
                   help="single-job mode: requested (estimated) runtime; "
                        "defaults to --runtime")
    p.add_argument("--mem", type=float, default=None,
                   help="single-job mode: requested memory per processor")
    p.add_argument("--submit-time", type=float, default=None,
                   help="single-job mode: logical submission instant "
                        "(default: the engine's current horizon)")
    p.add_argument("--user", type=int, default=None,
                   help="single-job mode: submitting user id")
    p.add_argument("--status", type=int, default=None, metavar="JOB_ID",
                   help="query one job's state")
    p.add_argument("--stats", action="store_true",
                   help="print tenant statistics")
    p.add_argument("--advance", type=float, default=None, metavar="UNTIL",
                   help="declare that logical time reached UNTIL")
    p.add_argument("--drain", action="store_true",
                   help="run every queued job to completion")
    p.add_argument("--stop", action="store_true",
                   help="with --drain: shut the daemon down afterwards")

    return parser


def _telemetry_config(args) -> TelemetryConfig | None:
    """``--telemetry PATH`` -> config, ``None`` when the flag is absent."""
    path = getattr(args, "telemetry", None)
    if path is None:
        return None
    return TelemetryConfig(enabled=True, path=path)


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _cmd_traces(args) -> int:
    print(f"{'Name':<14} {'size':>7} {'it(s)':>8} {'rt(s)':>8} {'nt':>8}")
    for name in available_traces():
        trace = load_trace(name, n_jobs=args.jobs, seed=args.seed)
        print(characterize(trace).table_row())
    return 0


def _cmd_scenarios(args) -> int:
    names = available_scenarios()
    print(f"{'Scenario':<17} {'procs':>7} {'mem':>6} {'workload':<14} "
          f"{'protocol':<22} description")
    for name in names:
        s = get_scenario(name)
        proto = s.protocol
        mem = "-" if s.cluster.memory is None else f"{s.cluster.memory:g}"
        bf = "+bf" if proto.backfill else ""
        proto_s = f"{proto.n_sequences}x{proto.sequence_length} {proto.metric}{bf}"
        print(f"{name:<17} {s.cluster.n_procs:>7} {mem:>6} "
              f"{s.workload.trace:<14} {proto_s:<22} {s.description}")
    print(f"{len(names)} scenarios registered")
    return 0


def _cmd_generate(args) -> int:
    trace = load_trace(args.name, n_jobs=args.jobs, seed=args.seed)
    write_swf(trace, args.output)
    print(f"wrote {len(trace)} jobs ({trace.max_procs} procs) to {args.output}")
    return 0


def _cmd_evaluate(args) -> int:
    if (args.name is None) == (args.scenario is None):
        print("evaluate: pass a trace name or --scenario (not both)",
              file=sys.stderr)
        return 2
    runtime = RuntimeConfig.from_workers(args.workers, transport=args.transport)
    schedulers = [cls() for cls in HEURISTICS.values()]
    if args.scenario:
        scen = get_scenario(args.scenario)  # fail fast on unknown names
        # Seed precedence: --seed overrides BOTH the workload-generation
        # seed and the protocol's sequence-sampling seed; without it the
        # scenario defaults apply to both.
        eval_seed = scen.protocol.seed if args.seed is None else args.seed
        config = EvalConfig(
            n_sequences=args.sequences, sequence_length=args.length,
            seed=eval_seed, runtime=runtime,
            telemetry=_telemetry_config(args),
            scenario=ScenarioConfig(name=args.scenario, n_jobs=args.jobs,
                                    seed=args.seed),
        )
        n_procs = scen.cluster.n_procs
        metric = args.metric or scen.protocol.metric
        backfill = args.backfill  # tri-state; None = protocol default
        backfill_on = (scen.protocol.backfill if args.backfill is None
                       else args.backfill)
        trace_arg, label = None, f"scenario {scen.name}"
    else:
        trace_arg = load_trace(args.name, n_jobs=args.jobs,
                               seed=0 if args.seed is None else args.seed,
                               swf_dir=args.swf_dir)
        config = EvalConfig(n_sequences=args.sequences,
                            sequence_length=args.length, seed=42,
                            runtime=runtime,
                            telemetry=_telemetry_config(args))
        n_procs = trace_arg.max_procs
        metric = args.metric or "bsld"
        backfill = bool(args.backfill)
        backfill_on = backfill
        label = trace_arg.name
    if args.model:
        rl = RLSchedulerPolicy.load(args.model)
        if args.scenario:
            # Full retarget: checked n_procs rebind plus explicit
            # feature-layout classification against the scenario.
            rl = rl.retarget(scen)
            if rl.compat != "native":
                logger.info("note: %s deploys %s on scenario %s",
                            rl.name, rl.compat, scen.name)
        else:
            # Retarget the saved policy at this cluster through the
            # checked setter: a bogus size fails loudly here, not mid-run.
            rl.n_procs = n_procs
        schedulers.append(rl)
    scores = compare(schedulers, trace_arg, metric=metric,
                     backfill=backfill, config=config)
    if not backfill_on:
        mode = "no backfill"
    else:  # True or a named variant like "conservative"
        mode = "backfill" if backfill_on is True else f"{backfill_on} backfill"
    print(f"{metric} on {label} ({mode}, "
          f"{args.sequences}x{args.length} jobs, workers={args.workers}):")
    for name, value in scores.items():
        print(f"  {name:<14} {float(value):12.3f} ± {value.std:.3f}")
    return 0


def _cmd_compare(args) -> int:
    names = ([n.strip() for n in args.scenarios.split(",")] if args.scenarios
             else available_scenarios())
    scheds = [make_scheduler(n.strip()) for n in args.schedulers.split(",")]
    config = EvalConfig(
        n_sequences=args.sequences, sequence_length=args.length,
        seed=args.seed,
        runtime=RuntimeConfig.from_workers(args.workers, transport=args.transport),
    )
    matrix = scenario_matrix(
        scheds, names, metric=args.metric,
        backfill=args.backfill,  # tri-state; None = per-scenario protocol
        config=config, n_jobs=args.jobs,
    )
    sched_names = [s.name for s in scheds]
    width = max(len(n) for n in matrix) + 2
    print(f"scenario × scheduler matrix "
          f"({args.sequences}x{args.length} jobs, workers={args.workers}):")
    print(" " * width + "".join(f"{n:>14}" for n in sched_names))
    for scen_name, row in matrix.items():
        cells = "".join(f"{float(row[n]):14.3f}" for n in sched_names)
        print(f"{scen_name:<{width}}{cells}")
    if args.output:
        doc = {
            "config": {
                "scenarios": list(matrix),
                "schedulers": sched_names,
                "n_sequences": args.sequences,
                "sequence_length": args.length,
                "seed": args.seed,
                "n_jobs": args.jobs,
                "metric_override": args.metric,
                "workers": args.workers,
            },
            "results": {
                scen_name: {
                    name: {
                        "mean": float(r),
                        "std": r.std,
                        "n": r.n,
                        "values": [float(v) for v in r.values],
                    }
                    for name, r in row.items()
                }
                for scen_name, row in matrix.items()
            },
        }
        with open(args.output, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        logger.info("wrote %s", args.output)
    return 0


def _cmd_train(args) -> int:
    if (args.name is None) == (args.scenario is None):
        print("train: pass a trace name or --scenario (not both)",
              file=sys.stderr)
        return 2
    scenario_cfg = None
    trace = None
    if args.scenario:
        get_scenario(args.scenario)  # fail fast on unknown names
        scenario_cfg = ScenarioConfig(name=args.scenario, n_jobs=args.jobs,
                                      seed=args.seed)
        trace_label = f"scenario {args.scenario}"
    else:
        trace = load_trace(args.name, n_jobs=args.jobs, seed=args.seed,
                           swf_dir=args.swf_dir)
        trace_label = trace.name
    result = train(
        trace,
        metric=args.metric,
        policy_preset=args.policy,
        env_config=EnvConfig(max_obsv_size=args.obsv),
        ppo_config=PPOConfig(update_path=args.update_path),
        train_config=TrainConfig(
            epochs=args.epochs,
            trajectories_per_epoch=args.trajectories,
            trajectory_length=args.length,
            seed=args.seed,
            use_trajectory_filter=args.filter,
            runtime=RuntimeConfig.from_workers(
                args.workers, transport=args.transport
            ),
            grad_workers=args.grad_workers,
            rollout_mode=args.rollout_mode,
            staleness=args.staleness,
            stale_mode=args.stale_mode,
            telemetry=_telemetry_config(args),
            scenario=scenario_cfg,
        ),
    )
    sched = result.as_scheduler()
    sched.save(args.output)
    print(f"trained {args.policy} on {trace_label} for {args.metric}: "
          + _train_summary(result))
    logger.info("saved to %s", args.output)
    return 0


def _train_summary(result) -> str:
    """The curve half of the ``train`` report, direction-aware.

    The "best" epoch is the one held-out greedy validation selected (the
    checkpoint :meth:`TrainingResult.as_scheduler` deploys), so the
    summary reports the training-curve value *at that epoch* — not the
    curve extremum, which for higher-is-better metrics like ``util``
    isn't even the right end of the range.
    """
    curve = result.metric_curve()
    _, higher_is_better = metric_by_name(result.metric)
    direction = "higher" if higher_is_better else "lower"
    if result.best_epoch >= 0:
        return (f"epoch-0 {curve[0]:.2f} -> {curve[result.best_epoch]:.2f} "
                f"at validation-best epoch {result.best_epoch} "
                f"({direction} is better)")
    # no epoch ever won validation (e.g. all-NaN rewards): report the end
    return (f"epoch-0 {curve[0]:.2f} -> final {curve[-1]:.2f} "
            f"({direction} is better)")


def _cmd_study(args) -> int:
    config = StudyConfig(
        scenarios=tuple(n.strip() for n in args.scenarios.split(","))
        if args.scenarios else (),
        zoo_dir=args.zoo_dir,
        heuristics=tuple(n.strip() for n in args.heuristics.split(",")),
        policy_preset=args.policy,
        metric=args.metric,
        seed=args.seed,
        epochs=args.epochs,
        trajectories_per_epoch=args.trajectories,
        trajectory_length=args.length,
        max_obsv_size=args.obsv,
        use_trajectory_filter=args.filter,
        n_jobs=args.jobs,
        n_sequences=args.sequences,
        sequence_length=args.eval_length,
        on_mismatch=args.on_mismatch,
        runtime=RuntimeConfig.from_workers(args.workers, transport=args.transport),
        rollout_mode=args.rollout_mode,
        staleness=args.staleness,
        telemetry=_telemetry_config(args),
    )
    doc = generalization_matrix(config, progress=logger.info)
    results = doc["results"]
    columns = list(next(iter(results.values())))
    width = max(len(n) for n in results) + 2
    col_width = max(14, max(len(n) for n in columns) + 2)
    print(f"generalization matrix ({len(results)} scenarios x "
          f"{len(columns)} schedulers, workers={args.workers}):")
    print(" " * width + "".join(f"{n:>{col_width}}" for n in columns))
    for scen_name, row in results.items():
        cells = "".join(f"{row[n]['mean']:{col_width}.3f}" for n in columns)
        print(f"{scen_name:<{width}}{cells}")
    for policy_name, info in doc["policies"].items():
        non_native = {s: c for s, c in info["compat"].items()
                      if c != "native"}
        if non_native:
            notes = ", ".join(f"{s}: {c}" for s, c in non_native.items())
            logger.info("%s deployed cross-layout -> %s", policy_name, notes)
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(doc, fh, indent=2, allow_nan=False)
            fh.write("\n")
        logger.info("wrote %s", args.output)
    return 0


def _parse_tenant(text: str) -> TenantConfig:
    """``NAME:SCHED:PROCS[:BACKFILL[:MEMORY]]`` -> :class:`TenantConfig`.

    ``SCHED`` is a heuristic name unless it looks like a file path
    (contains a slash or ends in ``.npz``), in which case it loads as a
    saved RL policy.
    """
    parts = text.split(":")
    if not 3 <= len(parts) <= 5:
        raise argparse.ArgumentTypeError(
            f"tenant spec must be NAME:SCHED:PROCS[:BACKFILL[:MEMORY]], "
            f"got {text!r}"
        )
    name, sched, procs = parts[0], parts[1], parts[2]
    backfill: bool | str = False
    if len(parts) >= 4 and parts[3] and parts[3] != "none":
        backfill = True if parts[3] == "true" else parts[3]
    memory = float(parts[4]) if len(parts) == 5 and parts[4] else None
    try:
        n_procs = int(procs)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"tenant {name!r}: PROCS must be an integer, got {procs!r}"
        ) from None
    is_policy = "/" in sched or sched.endswith(".npz")
    try:
        return TenantConfig(
            name=name,
            scheduler="RL" if is_policy else sched,
            policy_path=sched if is_policy else None,
            n_procs=n_procs,
            memory=memory,
            backfill=backfill,
        )
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"tenant {name!r}: {exc}") from None


def _cmd_serve(args) -> int:
    from .serve import serve  # lazy: asyncio machinery only when serving

    tenants = tuple(_parse_tenant(spec) for spec in (args.tenant or ()))
    config = ServeConfig(
        host=args.host,
        port=args.port,
        tenants=tenants or (TenantConfig(),),
        completed_history=args.history,
        telemetry=_telemetry_config(args),
    )
    names = ", ".join(t.name for t in config.tenants)
    logger.info("starting scheduler daemon with tenant(s): %s", names)
    return serve(config)


def _cmd_submit(args) -> int:
    from .serve import ServeClient, ServeError, replay_swf

    single_job = args.job_id is not None or args.runtime is not None
    actions = [bool(args.swf), single_job, args.status is not None,
               args.stats, args.advance is not None, args.drain]
    if not any(actions):
        print("submit: nothing to do — pass --swf, --job-id/--runtime, "
              "--status, --stats, --advance, or --drain", file=sys.stderr)
        return 2
    if args.swf and single_job:
        print("submit: --swf and single-job mode are mutually exclusive",
              file=sys.stderr)
        return 2
    if single_job and (args.job_id is None or args.runtime is None):
        print("submit: single-job mode needs both --job-id and --runtime",
              file=sys.stderr)
        return 2
    try:
        with ServeClient(args.host, args.port) as client:
            if args.swf:
                summary = replay_swf(client, args.swf, tenant=args.tenant,
                                     limit=args.limit, drain=args.drain)
                print(json.dumps(summary, indent=2))
            elif single_job:
                job = {"job_id": args.job_id, "run_time": args.runtime,
                       "requested_procs": args.procs}
                if args.reqtime is not None:
                    job["requested_time"] = args.reqtime
                if args.mem is not None:
                    job["requested_mem"] = args.mem
                if args.submit_time is not None:
                    job["submit_time"] = args.submit_time
                if args.user is not None:
                    job["user_id"] = args.user
                response = client.submit(job, tenant=args.tenant)
                print(json.dumps({k: v for k, v in response.items()
                                  if k not in ("v", "ok")}, indent=2))
            if args.status is not None:
                response = client.status(args.status, tenant=args.tenant)
                print(json.dumps(response["job"], indent=2))
            if args.advance is not None:
                response = client.advance(args.advance, tenant=args.tenant)
                print(json.dumps({k: v for k, v in response.items()
                                  if k not in ("v", "ok")}, indent=2))
            if args.stats:
                response = client.stats(tenant=args.tenant)
                print(json.dumps({k: v for k, v in response.items()
                                  if k not in ("v", "ok")}, indent=2))
            if args.drain and not args.swf:
                response = client.drain(tenant=args.tenant, stop=args.stop)
                print(json.dumps({k: v for k, v in response.items()
                                  if k not in ("v", "ok")}, indent=2))
            elif args.swf and args.stop:
                client.drain(tenant=None, stop=True)
    except ServeError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 1
    return 0


_COMMANDS = {
    "traces": _cmd_traces,
    "scenarios": _cmd_scenarios,
    "generate": _cmd_generate,
    "evaluate": _cmd_evaluate,
    "compare": _cmd_compare,
    "train": _cmd_train,
    "study": _cmd_study,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    setup_logging(verbose=args.verbose, quiet=args.quiet)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
