#!/usr/bin/env python
"""SWF tooling walkthrough: generate, characterise, export, and re-import
workloads; inspect congestion structure.

Useful when adapting the library to your own cluster's accounting logs:
convert them to SWF (18 whitespace-separated fields per job) and everything
in the library — training, evaluation, benches — works unchanged.

Run:  python examples/swf_tooling.py
"""

import tempfile
from pathlib import Path

import numpy as np

import repro
from repro.schedulers import SJF
from repro.sim import run_scheduler
from repro.sim.metrics import average_bounded_slowdown
from repro.workloads import (
    characterize,
    load_trace,
    read_swf,
    sample_sequence,
    write_swf,
)
from repro.workloads.stats import windowed_dispersion

# ---------------------------------------------------------------------------
# 1. Generate every named workload and print its Table II row.
# ---------------------------------------------------------------------------
print(f"{'Name':<14} {'size':>7} {'it(s)':>8} {'rt(s)':>8} {'nt':>8}   dispersion")
traces = {}
for name in ["SDSC-SP2", "HPC2N", "PIK-IPLEX", "Lublin-1", "Lublin-2"]:
    trace = load_trace(name, n_jobs=4000, seed=0)
    traces[name] = trace
    stats = characterize(trace)
    print(f"{stats.table_row()}   {windowed_dispersion(trace):10.1f}")

# ---------------------------------------------------------------------------
# 2. Round-trip through the SWF format.
# ---------------------------------------------------------------------------
with tempfile.TemporaryDirectory() as tmp:
    path = Path(tmp) / "PIK-IPLEX.swf"
    write_swf(traces["PIK-IPLEX"], path)
    size_kb = path.stat().st_size / 1024
    back = read_swf(path)
    print(f"\nWrote {path.name}: {size_kb:.0f} KiB, re-read {len(back)} jobs, "
          f"cluster {back.max_procs} procs")
    # load_trace() prefers a real file over the generator:
    again = load_trace("PIK-IPLEX", n_jobs=2000, swf_dir=tmp)
    print(f"load_trace(swf_dir=...) used the file: {len(again)} jobs")

# ---------------------------------------------------------------------------
# 3. Find the congestion episode (the Fig. 3 red range) in PIK-IPLEX.
# ---------------------------------------------------------------------------
pik = traces["PIK-IPLEX"]
rng = np.random.default_rng(0)
print("\nScanning PIK-IPLEX with SJF in 256-job windows (Fig. 3 protocol):")
worst_value, worst_start = 0.0, 0
for start in range(0, len(pik) - 256, 256):
    seq = sample_sequence(pik, 256, rng, start=start)
    bsld = average_bounded_slowdown(run_scheduler(seq, pik.max_procs, SJF()))
    bar = "#" * min(int(np.log10(max(bsld, 1.0)) * 10), 60)
    print(f"  jobs {start:5d}-{start + 256:5d}  bsld {bsld:9.1f}  {bar}")
    if bsld > worst_value:
        worst_value, worst_start = bsld, start
print(f"Worst window starts at job {worst_start}: bsld {worst_value:.1f} "
      f"(vs ~1 in calm windows — the paper's high-variance phenomenon)")
