#!/usr/bin/env python
"""Workload shift and model generalization (paper §V-E, Table VII).

The deployment question the paper poses: if the cluster's workload shifts
(short jobs → long jobs, narrow → wide), does a trained policy fall off a
cliff, or degrade gracefully?  Table VII's answer: an RL-X model applied to
trace Y is never catastrophically bad — "no worse than using an
inappropriate heuristic scheduler".

This example trains a small policy on Lublin-1, then schedules Lublin-2
and an SDSC-SP2-like workload with it, comparing against the best/worst
heuristics on each — the stability low-bound argument.

Run:  python examples/workload_shift.py
"""

import repro
from repro.schedulers import F1, FCFS, SJF, UNICEP, WFP3

HEURISTICS = [FCFS(), WFP3(), UNICEP(), SJF(), F1()]
EVAL = repro.EvalConfig(n_sequences=4, sequence_length=256, seed=13)

# ---------------------------------------------------------------------------
# 1. Train on Lublin-1.
# ---------------------------------------------------------------------------
train_trace = repro.load_trace("Lublin-1", n_jobs=4000, seed=0)
print(f"Training on {train_trace.name} ...")
result = repro.train(
    train_trace,
    metric="bsld",
    env_config=repro.EnvConfig(max_obsv_size=32),
    ppo_config=repro.PPOConfig(train_pi_iters=40, train_v_iters=40),
    train_config=repro.TrainConfig(
        epochs=12, trajectories_per_epoch=16, trajectory_length=64, seed=0
    ),
)
rl_lublin1 = result.as_scheduler(name="RL-Lublin-1")

# ---------------------------------------------------------------------------
# 2. Apply the *same* model to workloads it has never seen.
# ---------------------------------------------------------------------------
for target_name in ["Lublin-1", "Lublin-2", "SDSC-SP2"]:
    target = repro.load_trace(target_name, n_jobs=4000, seed=1)
    # NOTE: the model was sized for Lublin's 256-proc clusters; observation
    # features are normalised by cluster size, so it transfers unchanged.
    rl_lublin1.n_procs = target.max_procs
    scores = repro.compare(HEURISTICS + [rl_lublin1], target,
                           metric="bsld", config=EVAL)
    heuristic_scores = {k: v for k, v in scores.items() if k != "RL-Lublin-1"}
    best = min(heuristic_scores, key=heuristic_scores.get)
    worst = max(heuristic_scores, key=heuristic_scores.get)
    rl = scores["RL-Lublin-1"]
    print(
        f"\n{target_name:<10} best heuristic {heuristic_scores[best]:9.1f} ({best}) | "
        f"worst {heuristic_scores[worst]:9.1f} ({worst}) | RL-Lublin-1 {rl:9.1f}"
    )
    if rl <= heuristic_scores[worst]:
        print("  -> Table VII property holds: degradation bounded by the "
              "worst heuristic")
    else:
        print("  -> degradation exceeded the worst heuristic on this sample")
