#!/usr/bin/env python
"""Fairness-aware scheduling (paper §V-F).

A production scenario: one heavy user (the paper's `u17` on HPC2N) floods
the queue; plain bsld-optimal scheduling can starve everyone else.  The
paper's remedy is to change only the *reward*: optimise the Maximal
per-user bounded slowdown.  Heuristic schedulers can't be reconfigured
this way — RLScheduler can, with zero code changes.

This example
  1. shows the user imbalance of the HPC2N-like workload,
  2. evaluates the heuristics under the fairness metric (Table VIII),
  3. trains an RL policy directly on the fairness reward, and
  4. demonstrates combined rewards (slowdown + utilization).

Run:  python examples/multi_objective_fairness.py
"""

import repro
from repro.rl import combine_rewards, make_reward
from repro.schedulers import F1, FCFS, SJF, UNICEP, WFP3
from repro.sim.metrics import per_user_metric
from repro.workloads import user_job_counts

trace = repro.load_trace("HPC2N", n_jobs=4000, seed=0)

# ---------------------------------------------------------------------------
# 1. The user imbalance that motivates fairness (paper: "one user (u17)
#    submitted around 40K jobs while the average ... is only 700").
# ---------------------------------------------------------------------------
counts = user_job_counts(trace)
top = sorted(counts.items(), key=lambda kv: -kv[1])[:5]
print(f"{trace.name}: {len(counts)} users, top submitters:")
for user, n in top:
    print(f"  user {user:>3}: {n:5d} jobs ({100 * n / len(trace):.1f}%)")

# ---------------------------------------------------------------------------
# 2. Heuristics under 'bounded slowdown with Maximal fairness' (Table VIII).
# ---------------------------------------------------------------------------
eval_cfg = repro.EvalConfig(n_sequences=5, sequence_length=256, seed=7)
scores = repro.compare(
    [FCFS(), WFP3(), UNICEP(), SJF(), F1()],
    trace,
    metric="fair-bsld-max",
    config=eval_cfg,
)
print("\nMax per-user bsld, heuristics (lower = fairer):")
for name, value in sorted(scores.items(), key=lambda kv: kv[1]):
    print(f"  {name:<8} {value:10.1f}")

# ---------------------------------------------------------------------------
# 3. Train RLScheduler on the fairness reward — just name the metric.
# ---------------------------------------------------------------------------
result = repro.train(
    trace,
    metric="fair-bsld-max",
    env_config=repro.EnvConfig(max_obsv_size=32),
    ppo_config=repro.PPOConfig(train_pi_iters=30, train_v_iters=30),
    train_config=repro.TrainConfig(
        epochs=10, trajectories_per_epoch=12, trajectory_length=64, seed=0
    ),
)
rl = result.as_scheduler(name="RL-fair")
rl_score = repro.evaluate(rl, trace, metric="fair-bsld-max", config=eval_cfg)
print(f"\n  {'RL-fair':<8} {rl_score:10.1f}")

# Inspect the per-user breakdown of one scheduled sequence.
from repro.sim import run_scheduler
from repro.workloads import SequenceSampler

seq = SequenceSampler(trace, 256, seed=7).sample()
done = run_scheduler(seq, trace.max_procs, rl)
per_user = per_user_metric(done)
worst = max(per_user.items(), key=lambda kv: kv[1])
print(f"  worst-treated user under RL-fair: user {worst[0]} "
      f"(bsld {worst[1]:.1f}) across {len(per_user)} users")

# ---------------------------------------------------------------------------
# 4. Combined metrics: minimise slowdown while maximising utilization —
#    "it may require to consider multiple metrics at the same time".
# ---------------------------------------------------------------------------
combo = combine_rewards({"bsld": 1.0, "util": 200.0})
bsld_only = make_reward("bsld")
done_seq = run_scheduler(seq, trace.max_procs, SJF())
print(
    f"\nCombined reward demo on one SJF-scheduled sequence: "
    f"bsld-reward={bsld_only(done_seq, trace.max_procs):.1f}, "
    f"combined={combo(done_seq, trace.max_procs):.1f}"
)
