#!/usr/bin/env python
"""Fast training: the vectorised rollout engine in action.

The trainer collects every epoch's trajectories through ``VecSchedGym``
(``TrainConfig.vectorized``, on by default): ``n_envs`` environments step
in lock-step and each policy forward serves all of them at once, while
value estimates are computed once per finished episode on a whole-episode
batch.  This script times one identical epoch both ways and verifies the
vectorised path reproduces the sequential numbers exactly — the speedup
is free.

Related: ``benchmarks/perf/run_perf.py`` measures the rollout/engine/PPO
hot paths in isolation and records them in ``BENCH_perf.json``.

Run:  PYTHONPATH=src python examples/fast_training.py
"""

import time

import repro
from repro.rl import Trainer

trace = repro.load_trace("Lublin-1", n_jobs=3000, seed=0)
print(f"Loaded {trace.name}: {len(trace)} jobs on {trace.max_procs} processors")

# ---------------------------------------------------------------------------
# 1. One epoch, collected sequentially (one env at a time).  Note: even the
#    sequential mode shares the per-episode batched value/log-prob pass, so
#    the gap to the true pre-vectorisation trainer is larger than measured
#    here — benchmarks/perf/run_perf.py isolates the rollout and reports
#    that ratio in BENCH_perf.json.
# ---------------------------------------------------------------------------


def make_trainer(vectorized, n_envs=32):
    return Trainer(
        trace,
        metric="bsld",
        policy_preset="kernel",
        env_config=repro.EnvConfig(max_obsv_size=128),
        ppo_config=repro.PPOConfig(
            train_pi_iters=3, train_v_iters=3, minibatch_size=512,
        ),
        train_config=repro.TrainConfig(
            epochs=1,
            trajectories_per_epoch=48,
            trajectory_length=64,
            seed=0,
            vectorized=vectorized,
            n_envs=n_envs,
        ),
    )


sequential = make_trainer(vectorized=False)
start = time.perf_counter()
seq_record = sequential.run_epoch(0)
seq_time = time.perf_counter() - start
print(f"\nsequential epoch: {seq_time:5.1f}s  "
      f"mean bsld {seq_record.mean_metric:.2f}  kl {seq_record.stats.kl:.5f}")

# ---------------------------------------------------------------------------
# 2. The same epoch through the vectorised collector.
# ---------------------------------------------------------------------------
vectorized = make_trainer(vectorized=True)
start = time.perf_counter()
vec_record = vectorized.run_epoch(0)
vec_time = time.perf_counter() - start
print(f"vectorized epoch: {vec_time:5.1f}s  "
      f"mean bsld {vec_record.mean_metric:.2f}  kl {vec_record.stats.kl:.5f}  "
      f"({seq_time / vec_time:.1f}x faster)")

# ---------------------------------------------------------------------------
# 3. Same seed => exactly the same training step, to the last bit.
# ---------------------------------------------------------------------------
assert vec_record.mean_reward == seq_record.mean_reward
assert vec_record.stats.kl == seq_record.stats.kl
print("\nvectorised epoch reproduced the sequential epoch exactly "
      "(same rewards, same update statistics).")
