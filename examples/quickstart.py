#!/usr/bin/env python
"""Quickstart: train RLScheduler on a Lublin workload and compare it with
the paper's heuristic baselines.

This is the paper's §V-C experiment in miniature — small enough to finish
in a couple of minutes on a laptop.  Scale the config constants up to the
paper's values (100 epochs × 100 trajectories × 256 jobs) for a full run.

Run:  python examples/quickstart.py
"""

import repro
from repro.schedulers import F1, FCFS, SJF, UNICEP, WFP3

# ---------------------------------------------------------------------------
# 1. Load a workload.  Synthetic Lublin-1 here; put real .swf files in a
#    directory and pass swf_dir=... to use them instead.
# ---------------------------------------------------------------------------
trace = repro.load_trace("Lublin-1", n_jobs=4000, seed=0)
print(f"Loaded {trace.name}: {len(trace)} jobs on {trace.max_procs} processors")

# ---------------------------------------------------------------------------
# 2. Train an RL scheduling policy for average bounded slowdown.
# ---------------------------------------------------------------------------
result = repro.train(
    trace,
    metric="bsld",
    policy_preset="kernel",                    # the paper's network (Fig. 5)
    env_config=repro.EnvConfig(max_obsv_size=32),
    ppo_config=repro.PPOConfig(train_pi_iters=40, train_v_iters=40),
    train_config=repro.TrainConfig(
        epochs=15, trajectories_per_epoch=16, trajectory_length=64, seed=0
    ),
)
curve = result.metric_curve()
print("\nTraining curve (mean bsld per epoch):")
print("  " + " ".join(f"{v:7.1f}" for v in curve))

# ---------------------------------------------------------------------------
# 3. Deploy the learned policy as a scheduler and compare (Table V protocol:
#    identical random test sequences for every scheduler).
# ---------------------------------------------------------------------------
rl_sched = result.as_scheduler()
scores = repro.compare(
    [FCFS(), WFP3(), UNICEP(), SJF(), F1(), rl_sched],
    trace,
    metric="bsld",
    config=repro.EvalConfig(n_sequences=5, sequence_length=256, seed=42),
)

print("\nAverage bounded slowdown over 5 test sequences (lower is better):")
for name, value in sorted(scores.items(), key=lambda kv: kv[1]):
    print(f"  {name:<12} {value:10.2f}")

# ---------------------------------------------------------------------------
# 4. Persist the model for production use.
# ---------------------------------------------------------------------------
rl_sched.save("rlscheduler_lublin1.npz")
reloaded = repro.RLSchedulerPolicy.load("rlscheduler_lublin1.npz")
print(f"\nSaved + reloaded policy: {reloaded.name} "
      f"({reloaded.policy.num_parameters()} parameters)")
